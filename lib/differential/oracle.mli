(** The differential oracle: run each case on two backends and
    classify the disagreement (paper §IX × NecoFuzz-style
    cross-configuration comparison). *)

type clazz =
  | Lossy of string
      (** translation could not carry the seed over — expected *)
  | Agree
      (** same normalized verdict (both-crashed counts as agreement) *)
  | Semantic of string
      (** both ran; a guest-visible observation differs *)
  | Crash_on_one of {
      left_crash : string option;
      right_crash : string option;
    }  (** one substrate killed the guest, the other carried on *)

type verdict = {
  v_index : int;
  v_reason : string;
  v_class : clazz;
}

val is_finding : clazz -> bool
(** [Semantic] and [Crash_on_one]. *)

val class_kind : clazz -> string

val classify_pair :
  Normalize.observation -> Normalize.observation -> clazz
(** Pure comparison of two observations of one comparable case. *)

val run_case :
  left:Backend.t -> right:Backend.t -> Iris_core.Seed.t -> verdict
(** Classify the seed; if comparable, execute on both backends and
    compare. *)

val expected_planted :
  plant:Iris_svm.Machine.asymmetry -> Iris_core.Seed.t array -> int list
(** Ground truth for the planted-asymmetry harness: indices a perfect
    detector must flag, computed by diffing an unplanted SVM machine
    against the planted one — no VT-x side involved. *)
