(** Differential sweep over a recorded trace, in the [Campaign] mold:
    pure plan (contiguous trace segments) → per-segment execute (the
    only hypervisor-touching part) → pure index-ordered finalize, so
    the orchestrator can shard segments across the domain pool and the
    merged divergence report is byte-identical for any job count.

    Segments — not independent cases — because the VM-entry checks
    after each handler consult guest state beyond the seed (mode/RIP
    consistency); each segment replays its prefix so every seed runs
    at its true predecessor state S_i (the §VI-B lesson). *)

type finding = {
  f_index : int;
  f_reason : string;
  f_kind : string;  (** ["semantic"] or ["crash-on-one"] *)
  f_detail : string;
}

type report = {
  total : int;
  comparable : int;
  lossy : int;
  agreements : int;
  findings : finding list;  (** index order *)
  lossy_reasons : (string * int) list;
  plant : string option;
}

val case_count : Iris_core.Trace.t -> int
val case : Iris_core.Trace.t -> int -> Iris_core.Seed.t

val segments : jobs:int -> total:int -> (int * int) array
(** Contiguous [[a, b)] shards covering [0, total), one per job slot
    (at least one, even when the trace is empty). *)

val execute_segment :
  ?plant:Iris_svm.Machine.asymmetry ->
  replayer:Iris_core.Replayer.t ->
  anchor:Iris_fuzzer.Campaign.anchor ->
  trace:Iris_core.Trace.t ->
  int * int ->
  Oracle.verdict array
(** Run one segment: revert to the S_0 anchor, replay the prefix to
    reach the segment start, then walk it — verdicts are a function of
    (seed, trace prefix) only, so any worker may run any segment and
    the merge is deterministic. *)

val finalize :
  ?plant:Iris_svm.Machine.asymmetry ->
  verdicts:Oracle.verdict array ->
  unit ->
  report
(** Pure ordered merge; [verdicts] holds one entry per trace seed. *)

val finding_indices : report -> int list

val run_with :
  ?plant:Iris_svm.Machine.asymmetry ->
  replayer:Iris_core.Replayer.t ->
  trace:Iris_core.Trace.t ->
  unit ->
  report
(** Sequential driver against a caller-owned replayer: anchor at S_0,
    sweep every recorded seed, release the anchor. *)

val expected_planted :
  plant:Iris_svm.Machine.asymmetry -> Iris_core.Trace.t -> int list
(** Ground truth finding set for a planted run (see
    {!Oracle.expected_planted}). *)

val pp_report : Format.formatter -> report -> unit
