(* Verdict normalization: decide what is comparable across the VT-x
   and SVM substrates and what to observe after a case.

   The whole oracle's zero-false-positive property is built here.  A
   recorded seed is compared only when its translation is exact
   ([Port.translate] dropped nothing, the exit reason has an SVM
   counterpart, and the handler family is modeled on the VMCB
   substrate), and the post-case state digest is restricted to what
   the seed itself constrains: Save-area VMCB slots the seed injected
   and the GPRs it carried, minus per-family clobbers whose values
   are legitimately backend-local (time-stamp counters, device reads).
   Everything else — VT-x shadow state, control-area noise, baseline
   state the seed never mentioned — is out of the digest domain, so a
   backend disagreement there can never surface as a finding. *)

module F = Iris_vmcs.Field
module Comp = Iris_coverage.Component
module Gpr = Iris_x86.Gpr
module Seed = Iris_core.Seed
module Vmcb = Iris_svm.Vmcb
module Port = Iris_svm.Port
module E = Iris_svm.Exitcode
module Q = Iris_vtx.Exit_qual

(* Components whose coverage is attributable to the dispatched
   handler alone.  The harness-side components (exit plumbing, VMCS
   maintenance, interrupt/timer/APIC scaffolding) fire differently on
   the two substrates by construction — SVM has no VMREAD shim, no
   entry-time interrupt assist — so they are masked out of the
   comparison, exactly as the paper filters its own instrumentation
   (Iris_c) out of coverage reports. *)
let comparable_component = function
  | Comp.Hvm_c | Comp.Emulate_c | Comp.Io_c | Comp.Msr_c | Comp.Cpuid_c
  | Comp.Realmode_c | Comp.Ept_c | Comp.Hypercall_c ->
      true
  | Comp.Vmx_c | Comp.Vmcs_c | Comp.Intr_c | Comp.Irq_c | Comp.Vlapic_c
  | Comp.Vpt_c | Comp.Iris_c ->
      false

(* What to read back after the case: (source VMCS field, VMCB slot)
   pairs — the VT-x side reads the field, the SVM side the slot — and
   the surviving GPRs. *)
type probe = {
  p_slots : (F.t * Vmcb.field) list;
  p_gprs : Gpr.reg list;
}

(* One backend's normalized post-case view.  Note what is absent: the
   [blocked] flag.  The replayer deliberately clears it after every
   handler ("the dummy vCPU is never allowed to block", §IV-B), so on
   the VT-x substrate it is harness-suppressed state, not a replay
   observable; a blocking-policy asymmetry still surfaces through the
   crash channel (HLT with IF clear kills the guest on both). *)
type observation = {
  o_crash : string option;
  o_slots : (string * int64) list;  (* slot name, value; probe order *)
  o_gprs : (string * int64) list;
  o_components : string list;       (* in-mask components, sorted *)
}

let first_slot_value (tr : Port.translated) slot =
  List.find_map
    (fun w -> if w.Port.field = slot then Some w.Port.value else None)
    tr.Port.writes

(* GPRs whose post-case value is legitimately backend-local. *)
let gpr_clobbers (tr : Port.translated) =
  match tr.Port.exitcode with
  | Some E.Vmexit_rdtsc -> [ Gpr.Rax; Gpr.Rdx ]
  | Some E.Vmexit_rdtscp -> [ Gpr.Rax; Gpr.Rcx; Gpr.Rdx ]
  | Some E.Vmexit_ioio -> (
      match first_slot_value tr Vmcb.exitinfo1 with
      | Some qual -> (
          match Q.decode_io qual with
          | Some { Q.direction = Q.Io_in; _ } -> [ Gpr.Rax ]
          | _ -> [])
      | None -> [])
  | Some (E.Vmexit_cr_read _ | E.Vmexit_cr_write _) -> (
      match first_slot_value tr Vmcb.exitinfo1 with
      | Some qual -> (
          match Q.decode_cr qual with
          | Some { Q.access = Q.Mov_from_cr; cr = 8; gpr } -> [ gpr ]
          | _ -> [])
      | None -> [])
  | _ -> []

(* Exit families the SVM machine does not model: their handlers
   consume VT-x-only exit information (interruption info, MSR access
   direction) or state outside the seed (guest memory for the
   instruction emulator).  Most of these are *also* caught by the
   dropped-fields check — the classification here is the explicit,
   auditable list. *)
let family_modeled (tr : Port.translated) =
  match tr.Port.exitcode with
  | None -> Error "exit reason has no SVM counterpart"
  | Some code -> (
      match code with
      | E.Vmexit_msr ->
          Error "MSR access direction is VT-x-only exit information"
      | E.Vmexit_excp _ ->
          Error "exception vector lives in the VT-x interruption info"
      | E.Vmexit_intr | E.Vmexit_nmi | E.Vmexit_vintr ->
          Error "interrupt delivery depends on VT-x-only pending state"
      | E.Vmexit_ioio -> (
          match first_slot_value tr Vmcb.exitinfo1 with
          | None -> Error "I/O qualification was not recorded"
          | Some qual -> (
              match Q.decode_io qual with
              | None -> Error "undecodable I/O qualification"
              | Some { Q.string_op = true; _ } ->
                  Error "string I/O needs the instruction emulator"
              | Some _ -> Ok ()))
      | E.Vmexit_npf -> (
          match first_slot_value tr Vmcb.exitinfo2 with
          | None -> Error "faulting GPA was not recorded"
          | Some gpa ->
              if
                Iris_hv.Vlapic.in_range gpa
                || (gpa >= Iris_hv.Domain.mmio_bar_base
                    && gpa
                       < Int64.add Iris_hv.Domain.mmio_bar_base
                           Iris_hv.Domain.mmio_bar_size)
              then Error "MMIO emulation needs guest memory"
              else Ok ())
      | E.Vmexit_cr_read _ | E.Vmexit_cr_write _ -> (
          match first_slot_value tr Vmcb.exitinfo1 with
          | None -> Error "CR qualification was not recorded"
          | Some qual -> (
              match Q.decode_cr qual with
              | None -> Error "undecodable CR qualification"
              | Some { Q.access = Q.Mov_to_cr; cr = 0 | 4; _ } ->
                  Error "CR0/CR4 writes read the VT-x CR shadows"
              | Some { Q.access = Q.Clts_op | Q.Lmsw_op; _ } ->
                  Error "CLTS/LMSW read the VT-x CR0 shadow"
              | Some { Q.access = Q.Mov_to_cr; cr = 3 | 8; _ }
              | Some { Q.access = Q.Mov_from_cr; cr = 3 | 8; _ } ->
                  Ok ()
              | Some _ -> Error "CR access outside the modeled set"))
      | _ -> Ok ())

(* First-wins vs last-wins hazard: the VT-x replayer injects writable
   reads with the *first* occurrence winning, while [Port.apply]
   stores in seed order (last wins), and two distinct VMCS fields can
   share a VMCB slot.  Comparable only when every duplicate agrees. *)
let inconsistent_slot (tr : Port.translated) =
  let seen = Hashtbl.create 8 in
  List.find_map
    (fun w ->
      match Hashtbl.find_opt seen w.Port.field with
      | Some v when v <> w.Port.value -> Some (Vmcb.name w.Port.field)
      | Some _ -> None
      | None ->
          Hashtbl.add seen w.Port.field w.Port.value;
          None)
    tr.Port.writes

type case_class =
  | Comparable of Port.translated * probe
  | Untranslatable of string
      (** lossy: expected, never a finding *)

let probe_of (seed : Seed.t) (tr : Port.translated) =
  let seen = Hashtbl.create 16 in
  let slots =
    List.filter_map
      (fun (f, _) ->
        match Port.map_field f with
        | Some slot
          when Vmcb.area slot = Vmcb.Save && not (Hashtbl.mem seen slot) ->
            Hashtbl.add seen slot ();
            Some (f, slot)
        | _ -> None)
      seed.Seed.reads
  in
  let clobbered = gpr_clobbers tr in
  let gprs =
    List.filter
      (fun r -> not (List.mem r clobbered))
      (List.sort_uniq compare (Gpr.Rax :: List.map fst seed.Seed.gprs))
  in
  { p_slots = slots; p_gprs = gprs }

let classify (seed : Seed.t) =
  let tr = Port.translate seed in
  if tr.Port.dropped <> [] then
    Untranslatable
      (let d = List.hd tr.Port.dropped in
       Printf.sprintf "%s: %s"
         (F.name d.Port.vmcs_field)
         d.Port.reason)
  else
    match family_modeled tr with
    | Error reason -> Untranslatable reason
    | Ok () -> (
        match inconsistent_slot tr with
        | Some slot ->
            Untranslatable
              (Printf.sprintf
                 "inconsistent duplicate values injected into %s" slot)
        | None -> Comparable (tr, probe_of seed tr))

let normalize_components comps =
  List.sort_uniq compare
    (List.filter_map
       (fun c -> if comparable_component c then Some (Comp.name c) else None)
       comps)

(* First difference between two non-crashed observations, as a human
   line; [None] means the backends agree. *)
let first_difference a b =
    let slot_diff =
      List.find_map
        (fun ((n, va), (_, vb)) ->
          if va <> vb then
            Some (Printf.sprintf "%s: 0x%Lx vs 0x%Lx" n va vb)
          else None)
        (List.combine a.o_slots b.o_slots)
    in
    match slot_diff with
    | Some d -> Some d
    | None -> (
        let gpr_diff =
          List.find_map
            (fun ((n, va), (_, vb)) ->
              if va <> vb then
                Some (Printf.sprintf "%s: 0x%Lx vs 0x%Lx" n va vb)
              else None)
            (List.combine a.o_gprs b.o_gprs)
        in
        match gpr_diff with
        | Some d -> Some d
        | None ->
            if a.o_components <> b.o_components then
              Some
                (Printf.sprintf "components: [%s] vs [%s]"
                   (String.concat " " a.o_components)
                   (String.concat " " b.o_components))
            else None)

let digest obs =
  let buf = Buffer.create 128 in
  (match obs.o_crash with
  | Some m -> Buffer.add_string buf ("crash=" ^ m ^ ";")
  | None -> ());
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "%s=%Lx;" n v))
    obs.o_slots;
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "%s=%Lx;" n v))
    obs.o_gprs;
  List.iter (fun c -> Buffer.add_string buf (c ^ ";")) obs.o_components;
  Digest.to_hex (Digest.string (Buffer.contents buf))
