(** The backend abstraction: a packed substrate instance that can run
    one comparable case and report a normalized observation.

    Instances do not revert between cases — the VT-x side walks the
    recorded trace in order so every seed executes at its true
    predecessor state (the §VI-B "bad RIP for mode 0" lesson), and
    the SVM machine resets itself at the top of each [vmrun]. *)

type t

type observation = Normalize.observation

val name : t -> string

val run_case :
  t ->
  Iris_core.Seed.t ->
  Iris_svm.Port.translated ->
  Normalize.probe ->
  Normalize.observation
(** Execute one case and observe the probe. *)

val vtx : replayer:Iris_core.Replayer.t -> t
(** The recorded substrate: submits through the replayer (VMREAD shim
    + entry checks), observes via uninstrumented [Access.vmread_raw]
    and the saved register file.  The caller owns trace position:
    submit seeds in recorded order and revert between sweeps. *)

val svm :
  ?plant:Iris_svm.Machine.asymmetry -> ?mem_pages:int64 -> unit -> t
(** The ported substrate: an [Iris_svm.Machine] booted once and reset
    per case; cases inject [Port.translate]d seeds.  [plant]
    introduces an intentional asymmetry (detector ground truth);
    [mem_pages] should match the VT-x dummy's guest RAM so the
    memory_op hypercall agrees. *)
