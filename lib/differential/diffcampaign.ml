(* Differential sweep over a recorded trace, in the Campaign mold:
   pure plan (contiguous trace segments) → per-segment execute (the
   only hypervisor-touching part) → pure index-ordered finalize.  The
   orchestrator shards [execute_segment] across the domain pool; the
   merged report is byte-identical for any job count because a seed's
   verdict is a function of (seed, S_i) and S_i is the deterministic
   result of replaying seeds 0..i-1 — independent of which worker
   runs the segment.

   Why segments and not independent cases: the seed carries every
   input its *handler* consumes, but the VM-entry checks that follow
   the handler consult guest state beyond the seed (operating mode vs
   RIP consistency, segment descriptors).  Submitting a post-boot
   seed from the pre-boot S_0 fails those checks — the paper's §VI-B
   "invalid guest state" phenomenon — and SVM's VMRUN checks are
   deliberately weaker, so anchoring everything at S_0 manufactures
   crash-on-one false positives on mode-changing workloads.  Walking
   each segment from its true predecessor state keeps the VT-x side
   exactly on the recorded path, where sequential replay is already
   proven clean. *)

module Seed = Iris_core.Seed
module Trace = Iris_core.Trace
module Replayer = Iris_core.Replayer
module Ctx = Iris_hv.Ctx
module Domain = Iris_hv.Domain
module Checkpoint = Iris_hv.Checkpoint
module Gmem = Iris_memory.Gmem
module Machine = Iris_svm.Machine
module Campaign = Iris_fuzzer.Campaign

type finding = {
  f_index : int;
  f_reason : string;
  f_kind : string;   (* "semantic" | "crash-on-one" *)
  f_detail : string;
}

type report = {
  total : int;
  comparable : int;
  lossy : int;
  agreements : int;
  findings : finding list;  (* index order *)
  lossy_reasons : (string * int) list;  (* reason -> count, sorted *)
  plant : string option;
}

let case_count (trace : Trace.t) = Array.length trace.Trace.seeds

let case (trace : Trace.t) i = trace.Trace.seeds.(i)

let mem_pages_of ctx =
  Int64.div (Gmem.size_bytes ctx.Ctx.dom.Domain.mem) 4096L

(* Contiguous [a, b) shards, one per job slot; empty trace degrades
   to a single empty segment so the pool still has one task. *)
let segments ~jobs ~total =
  let jobs = max 1 (min jobs (max 1 total)) in
  Array.init jobs (fun w -> (w * total / jobs, (w + 1) * total / jobs))

let revert_to_anchor ~replayer = function
  | Campaign.Anchor_full snap ->
      Domain.revert (Replayer.ctx replayer).Ctx.dom snap
  | Campaign.Anchor_cow (cps, mark, _) ->
      ignore (Checkpoint.rewind cps mark : Domain.revert_stats)

(* Run one [a, b) segment: revert the worker's domain to S_0, replay
   the prefix 0..a-1 to reach S_a, then walk the segment — every seed
   (lossy ones included) is submitted on the VT-x side to advance the
   trace, and comparable ones are additionally observed and mirrored
   on a fresh SVM machine sized to the same guest RAM. *)
let execute_segment ?plant ~replayer ~anchor ~(trace : Trace.t) (a, b) =
  revert_to_anchor ~replayer anchor;
  let left = Backend.vtx ~replayer in
  let right =
    Backend.svm ?plant ~mem_pages:(mem_pages_of (Replayer.ctx replayer)) ()
  in
  for i = 0 to a - 1 do
    ignore (Replayer.submit replayer trace.Trace.seeds.(i) : Replayer.outcome)
  done;
  Array.init (b - a) (fun k ->
      let seed = trace.Trace.seeds.(a + k) in
      let reason = Iris_vtx.Exit_reason.name seed.Seed.reason in
      match Normalize.classify seed with
      | Normalize.Untranslatable why ->
          ignore (Replayer.submit replayer seed : Replayer.outcome);
          { Oracle.v_index = seed.Seed.index;
            v_reason = reason;
            v_class = Oracle.Lossy why }
      | Normalize.Comparable (tr, probe) ->
          let va = Backend.run_case left seed tr probe in
          let vb = Backend.run_case right seed tr probe in
          { Oracle.v_index = seed.Seed.index;
            v_reason = reason;
            v_class = Oracle.classify_pair va vb })

let detail_of = function
  | Oracle.Lossy why -> why
  | Oracle.Agree -> ""
  | Oracle.Semantic d -> d
  | Oracle.Crash_on_one { left_crash; right_crash } ->
      let side name = function
        | Some m -> Printf.sprintf "%s crashed (%s)" name m
        | None -> Printf.sprintf "%s ran" name
      in
      side "left" left_crash ^ "; " ^ side "right" right_crash

let finalize ?plant ~(verdicts : Oracle.verdict array) () =
  let total = Array.length verdicts in
  let comparable = ref 0 and lossy = ref 0 and agreements = ref 0 in
  let findings = ref [] in
  let lossy_tbl = Hashtbl.create 16 in
  Array.iter
    (fun (v : Oracle.verdict) ->
      match v.Oracle.v_class with
      | Oracle.Lossy why ->
          incr lossy;
          Hashtbl.replace lossy_tbl why
            (1 + Option.value ~default:0 (Hashtbl.find_opt lossy_tbl why))
      | Oracle.Agree ->
          incr comparable;
          incr agreements
      | (Oracle.Semantic _ | Oracle.Crash_on_one _) as c ->
          incr comparable;
          findings :=
            {
              f_index = v.Oracle.v_index;
              f_reason = v.Oracle.v_reason;
              f_kind = Oracle.class_kind c;
              f_detail = detail_of c;
            }
            :: !findings)
    verdicts;
  {
    total;
    comparable = !comparable;
    lossy = !lossy;
    agreements = !agreements;
    findings =
      List.sort (fun a b -> compare a.f_index b.f_index) !findings;
    lossy_reasons =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) lossy_tbl []);
    plant = Option.map Machine.asymmetry_name plant;
  }

let finding_indices report = List.map (fun f -> f.f_index) report.findings

(* Sequential driver against a caller-owned replayer: anchor at S_0,
   walk the whole trace as one segment, release the anchor mark.  The
   [--jobs 1] oracle the bench gate compares the sharded runs
   against. *)
let run_with ?plant ~replayer ~(trace : Trace.t) () =
  let anchor = Campaign.anchor ~replayer ~trace ~seed_index:0 () in
  let verdicts =
    execute_segment ?plant ~replayer ~anchor ~trace
      (0, Array.length trace.Trace.seeds)
  in
  (match anchor with
  | Campaign.Anchor_full _ -> ()
  | Campaign.Anchor_cow (cps, mark, _) ->
      (* the walk advanced past the mark; rewind before popping so
         the journal folds from a clean S_0 *)
      ignore (Checkpoint.rewind cps mark : Domain.revert_stats);
      Checkpoint.pop cps mark);
  finalize ?plant ~verdicts ()

let expected_planted ~plant (trace : Trace.t) =
  Oracle.expected_planted ~plant trace.Trace.seeds

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%d seeds: %d comparable (%d agree, %d findings), %d lossy%s@,"
    r.total r.comparable r.agreements
    (List.length r.findings)
    r.lossy
    (match r.plant with
    | None -> ""
    | Some p -> Printf.sprintf " [planted: %s]" p);
  List.iter
    (fun f ->
      Format.fprintf ppf "  #%d %s %s: %s@," f.f_index f.f_reason f.f_kind
        f.f_detail)
    r.findings;
  Format.fprintf ppf "@]"
