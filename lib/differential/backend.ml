(* The backend abstraction: one packed value per substrate that can
   run a comparable case and report a normalized observation.

   Neither instance reverts between cases.  The VT-x side *walks* the
   recorded trace — each seed submits at its true predecessor state
   S_i, because the VM-entry checks consult guest state beyond what a
   seed carries (the §VI-B "bad RIP for mode 0" lesson: a post-boot
   seed against a pre-boot VMCS fails entry).  The SVM machine resets
   itself at the top of every [vmrun] instead: its entire comparable
   state is injected from the seed, so it has no notion of trace
   position. *)

module Gpr = Iris_x86.Gpr
module Seed = Iris_core.Seed
module Replayer = Iris_core.Replayer
module Ctx = Iris_hv.Ctx
module Access = Iris_hv.Access
module Cov = Iris_coverage.Cov
module Vmcb = Iris_svm.Vmcb
module Port = Iris_svm.Port
module Machine = Iris_svm.Machine

type t = {
  name : string;
  run_case : Seed.t -> Port.translated -> Normalize.probe -> Normalize.observation;
}

type observation = Normalize.observation

let name t = t.name
let run_case t seed tr probe = t.run_case seed tr probe

(* --- VT-x: the recorded substrate, driven through the replayer --- *)

let vtx ~replayer =
  let ctx = Replayer.ctx replayer in
  let run_case seed _tr (probe : Normalize.probe) =
    Cov.span_begin ctx.Ctx.cov;
    let crash =
      match Replayer.submit replayer seed with
      | Replayer.Replayed -> None
      | Replayer.Vm_crashed msg -> Some msg
      | exception Ctx.Hypervisor_panic msg ->
          Some ("hypervisor panic: " ^ msg)
    in
    let span = Cov.span_end ctx.Ctx.cov in
    {
      Normalize.o_crash = crash;
      o_slots =
        List.map
          (fun (f, slot) -> (Vmcb.name slot, Access.vmread_raw ctx f))
          probe.Normalize.p_slots;
      o_gprs =
        List.map
          (fun r -> (Gpr.name r, Gpr.get (Ctx.regs ctx) r))
          probe.Normalize.p_gprs;
      o_components =
        Normalize.normalize_components
          (List.map fst (Cov.by_component span));
    }
  in
  { name = "vtx"; run_case }

(* --- SVM: the ported substrate, driven through the VMCB machine --- *)

let svm ?plant ?mem_pages () =
  let m = Machine.boot ?plant ?mem_pages () in
  let run_case _seed tr (probe : Normalize.probe) =
    Machine.reset m;
    let crash =
      match Machine.vmrun m tr with
      | Machine.Ran -> None
      | Machine.Crashed msg -> Some msg
    in
    {
      Normalize.o_crash = crash;
      o_slots =
        List.map
          (fun (_, slot) -> (Vmcb.name slot, Machine.read_field m slot))
          probe.Normalize.p_slots;
      o_gprs =
        List.map
          (fun r -> (Gpr.name r, Machine.get_gpr m r))
          probe.Normalize.p_gprs;
      o_components =
        Normalize.normalize_components (Machine.touched_components m);
    }
  in
  let name =
    match plant with
    | None -> "svm"
    | Some a -> "svm+" ^ Machine.asymmetry_name a
  in
  { name; run_case }
