(** Generic work-stealing domain pool with panic containment.

    [run] executes [total] indexed tasks on [jobs] OCaml 5 domains,
    each owning opaque state built by [init] (for the orchestrator: an
    isolated hypervisor + dummy VM).  Results land in per-index slots
    — distinct slots, one writer each — and become visible through the
    happens-before edge of [Domain.join].

    An exception escaping [task] does not take the run down: the
    worker records [on_crash exn index] as that task's result,
    rebuilds its state with [init] (respawn), and keeps draining the
    queue.  Exceptions from [init] or [on_crash] propagate.

    [jobs = 1] runs the whole schedule inline on the calling domain —
    the same code path with no spawn, so a sequential run is the
    parallel machinery with N = 1. *)

type stats = {
  mutable executed : int;    (** tasks this worker completed *)
  mutable steals : int;      (** chunks stolen from other deques *)
  mutable respawns : int;    (** times the worker state was rebuilt *)
  mutable busy_seconds : float;  (** host wall time inside [task] *)
}

val run :
  jobs:int -> total:int -> init:(int -> 'w) -> task:('w -> int -> 'r) ->
  on_crash:(exn -> int -> 'r) -> 'r array * stats array * int array
(** [run ~jobs ~total ~init ~task ~on_crash] returns the results in
    index order, per-worker stats, and a [who] array mapping each
    index to the worker that executed it. *)
