(** Parallel fuzzing orchestrator: sharded multi-domain campaigns
    with a deterministic merge (DESIGN.md §8; scales out the paper's
    §VII campaign loop).

    Test cases are sharded across N worker domains, each owning a
    fully isolated hypervisor + dummy-VM universe: booted once
    (constructed, reverted to the recording snapshot, prefix replayed
    to the valid state S_R), then snapshot/reverted per case exactly
    like the sequential fuzzer.  Results carry their test-case index
    and are merged in index order; per-worker telemetry registries
    merge commutatively.  The merged campaign report, crash list and
    telemetry snapshot are byte-identical for any [jobs] — the test
    suite and the [scaling] bench enforce this by digest. *)

val cycles_per_second : float
(** The substrate's 3.6 GHz virtual TSC. *)

val cycles_to_seconds : int64 -> float

type worker_report = {
  w_id : int;
  w_executed : int;
  w_steals : int;
  w_respawns : int;
  w_setup_cycles : int64;   (** boot + prefix replay (all respawns) *)
  w_busy_cycles : int64;    (** modeled cycles executing test cases *)
  w_host_seconds : float;   (** host wall time inside tasks *)
}

type report = {
  r_jobs : int;
  r_workers : worker_report array;
  r_hub : Iris_telemetry.Hub.t;  (** merged, in worker-id order *)
  r_model_wall_cycles : int64;
      (** critical path: max over workers of setup + busy — how wall
          time composes on real hardware, independent of this host's
          CPU count *)
  r_model_busy_cycles : int64;  (** sum of executed-case cycles *)
  r_host_seconds : float;       (** host wall clock of the whole run *)
}

val utilization : report -> worker_report -> float
(** (setup + busy) / model wall, in [0, 1]. *)

val boot_universe :
  ?hub:Iris_telemetry.Hub.t ->
  recording:Iris_core.Manager.recording ->
  seed_index:int -> name:string -> unit ->
  Iris_core.Replayer.t * Iris_fuzzer.Campaign.anchor * int64
(** Boot one isolated worker universe: construct a dummy domain, arm
    it on the recording snapshot, replay the prefix to the valid
    state S_R and pin it (COW anchor).  Returns the replayer, the
    anchor and the setup cost in modeled cycles.  When [hub] is given
    the telemetry probe is attached only after S_R, keeping setup out
    of mergeable counters.  The building block behind {!fuzz}'s
    workers, exposed for the service layer's per-job universes. *)

val render_workers : report -> string
(** Per-worker utilization table plus the model-wall summary line. *)

(** {2 Mutant-level sharding: one campaign, cases fanned out} *)

type fuzz_outcome = {
  fuzz_result : Iris_fuzzer.Campaign.result;
      (** byte-identical to the sequential [Campaign.run] result *)
  fuzz_report : report;
}

val fuzz :
  ?jobs:int -> config:Iris_fuzzer.Campaign.config ->
  recording:Iris_core.Manager.recording ->
  reason:Iris_vtx.Exit_reason.t -> area:Iris_fuzzer.Mutation.area ->
  unit -> fuzz_outcome option
(** Shard one campaign's [1 + mutations] test cases across [jobs]
    worker domains.  [None] if the trace has no seed with [reason].
    A worker whose hypervisor context dies beyond triage reports a
    [Hypervisor_crash] verdict for the offending case and is
    respawned. *)

(** {2 Run-level sharding: whole guided/naive runs fanned out} *)

type sweep_outcome = {
  sweep_results :
    (Iris_vtx.Exit_reason.t * Iris_fuzzer.Guided.result option) array;
      (** one per requested reason, in request order *)
  sweep_report : report;
}

val guided_sweep :
  ?jobs:int -> ?guided:bool -> config:Iris_fuzzer.Guided.config ->
  recording:Iris_core.Manager.recording ->
  reasons:Iris_vtx.Exit_reason.t array -> unit -> sweep_outcome
(** A guided run is inherently sequential (each round mutates the
    corpus previous rounds grew), so the unit of sharding is a whole
    run: one per exit reason.  [~guided:false] runs the naive
    baseline at the same budget. *)

(** {2 Differential sweeps} *)

type diff_outcome = {
  diff_report : Iris_differential.Diffcampaign.report;
      (** index-ordered merged divergence report *)
  diff_run : report;  (** worker/utilization accounting *)
}

val diff_sweep :
  ?jobs:int ->
  ?plant:Iris_svm.Machine.asymmetry ->
  recording:Iris_core.Manager.recording ->
  unit ->
  diff_outcome
(** Shard the VT-x vs SVM differential oracle across the domain pool
    by contiguous trace segments: every worker owns an isolated VT-x
    universe anchored at S_0 plus its own SVM machine, each segment
    replays its prefix so every seed executes at its true predecessor
    state S_i, each recorded seed is classified exactly once globally,
    and the merged report is byte-identical for any [jobs].  [plant]
    introduces an intentional SVM-side asymmetry (detector ground
    truth); the merged hub gains [diff.*] counters via
    {!Iris_core.Analysis.note_backend_divergence}. *)
