(* Generic work-stealing domain pool.

   [run] executes [total] indexed tasks on [jobs] OCaml 5 domains.
   Each worker owns opaque state built by [init] — for the
   orchestrator, a fully isolated hypervisor + dummy VM — and writes
   each task's result into its own slot of a shared result array
   (distinct slots, one writer each: data-race free; the results
   become visible to the caller via the happens-before edge of
   [Domain.join]).

   Panic containment: an exception escaping [task] does not take the
   campaign down.  The worker reports [on_crash exn index] as that
   task's result, rebuilds its universe with [init] (respawn), and
   keeps draining the queue.  An exception escaping [init] or
   [on_crash] itself is a harness bug and propagates out of [run].

   [jobs = 1] runs the whole schedule inline on the calling domain —
   same code path, no spawn — so a sequential run is the parallel
   machinery with N = 1, not a separate implementation. *)

type stats = {
  mutable executed : int;    (* tasks this worker completed *)
  mutable steals : int;      (* chunks stolen from other deques *)
  mutable respawns : int;    (* times the worker state was rebuilt *)
  mutable busy_seconds : float;  (* host wall time inside [task] *)
}

let run (type w r) ~jobs ~total ~(init : int -> w)
    ~(task : w -> int -> r) ~(on_crash : exn -> int -> r) :
    r array * stats array * int array =
  let jobs = max 1 jobs in
  let results : r option array = Array.make total None in
  let who = Array.make total (-1) in
  let sched = Shard.create ~total ~workers:jobs in
  let stats =
    Array.init jobs (fun _ ->
        { executed = 0; steals = 0; respawns = 0; busy_seconds = 0.0 })
  in
  let worker w =
    let st = stats.(w) in
    let state = ref (init w) in
    let run_one i =
      let t0 = Unix.gettimeofday () in
      let r =
        match task !state i with
        | r -> r
        | exception e ->
            let r = on_crash e i in
            state := init w;
            st.respawns <- st.respawns + 1;
            r
      in
      st.busy_seconds <- st.busy_seconds +. (Unix.gettimeofday () -. t0);
      st.executed <- st.executed + 1;
      results.(i) <- Some r;
      who.(i) <- w
    in
    let rec loop () =
      match Shard.take sched w with
      | Shard.Empty -> ()
      | Shard.Own i -> run_one i; loop ()
      | Shard.Stolen i ->
          st.steals <- st.steals + 1;
          run_one i;
          loop ()
    in
    loop ()
  in
  if jobs = 1 then worker 0
  else begin
    let domains = Array.init jobs (fun w -> Domain.spawn (fun () -> worker w)) in
    Array.iter Domain.join domains
  end;
  (* Backstop: the scheduler dispenses every index exactly once, so
     after the join no slot should be empty — but if a worker died in
     a way containment could not catch, finish its slots inline rather
     than hand the merge a hole. *)
  let finished =
    Array.mapi
      (fun i r ->
        match r with
        | Some r -> r
        | None ->
            let st = stats.(0) in
            let r =
              match task (init 0) i with
              | r -> r
              | exception e -> on_crash e i
            in
            st.executed <- st.executed + 1;
            who.(i) <- 0;
            r)
      results
  in
  (finished, stats, who)
