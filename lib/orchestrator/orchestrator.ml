(* Parallel fuzzing orchestrator (paper §VII, scaled out).

   Shards campaign/guided test cases across N worker domains, each
   owning a fully isolated hypervisor + dummy-VM instance: booted
   once (constructed, reverted to the recording snapshot, prefix
   replayed to the valid state S_R), then snapshot/reverted per test
   case exactly as the sequential fuzzer does.

   Determinism is the subsystem's contract.  It rests on three facts:

   - reverting to S_R also resets the virtual clock, so a test case's
     outcome (verdict, coverage span, modeled cycles) is a pure
     function of (S_R, seed), independent of worker history;
   - results carry their test-case index and the merge folds them in
     index order ([Campaign.finalize]), recomputing every
     order-sensitive statistic (per-verdict novelty) on the merged
     sequence, never on the workers;
   - per-worker telemetry registries are merged with a commutative
     operation (counters/histograms add, gauges max), and each case
     is executed exactly once globally, so the merged snapshot is
     independent of the partition.  Worker *setup* (prefix replay) is
     kept out of the registries by attaching the probe only after S_R
     is reached — otherwise N workers would count the prefix N times.

   Model time: the substrate measures everything in virtual TSC
   cycles (3.6 GHz), so the scaling experiment does too.  A parallel
   campaign's modeled wall time is its critical path — the maximum
   over workers of (setup + executed-case cycles) — which is how wall
   time composes on real hardware, while host wall seconds on this
   machine measure only scheduler overhead. *)

module Ctx = Iris_hv.Ctx
module Cov = Iris_coverage.Cov
module Seed = Iris_core.Seed
module Manager = Iris_core.Manager
module Replayer = Iris_core.Replayer
module Campaign = Iris_fuzzer.Campaign
module Guided = Iris_fuzzer.Guided
module Hub = Iris_telemetry.Hub

let cycles_per_second = 3_600_000_000.0

let cycles_to_seconds c = Int64.to_float c /. cycles_per_second

(* --- worker lifecycle: boot → loop → drain → report --- *)

type worker = {
  wk_replayer : Replayer.t;
  wk_anchor : Campaign.anchor;
}

(* Boot one isolated universe: construct a dummy domain, arm it on the
   recording snapshot, replay the prefix to S_R.  When a hub is given
   the probe is attached only after S_R so that setup (boot + prefix
   replay) never reaches the merged counters.  Exposed for the service
   layer, whose per-job universes boot exactly like workers. *)
let boot_universe ?hub ~recording ~seed_index ~name () =
  let trace = recording.Manager.trace in
  let cov = Cov.create () in
  let hooks = Iris_hv.Hooks.create () in
  let ctx = Iris_hv.Xen.construct ~dummy:true ~cov ~hooks ~name () in
  Manager.arm_dummy ctx ~revert_to:(Some recording.Manager.snapshot)
    ~keep_memory:false;
  let replayer = Replayer.create ctx in
  let t0 = Iris_vtx.Clock.now (Ctx.clock ctx) in
  let anchor = Campaign.anchor ~replayer ~trace ~seed_index () in
  let setup = Int64.sub (Iris_vtx.Clock.now (Ctx.clock ctx)) t0 in
  (match hub with
  | Some hub -> ignore (Iris_hv.Observe.attach hub ctx : Iris_telemetry.Probe.t)
  | None -> ());
  (replayer, anchor, setup)

let boot_worker ~recording ~seed_index ~hub ~setups wid =
  let replayer, anchor, setup =
    boot_universe ~hub ~recording ~seed_index
      ~name:(Printf.sprintf "worker%d-dummy" wid) ()
  in
  setups.(wid) <- Int64.add setups.(wid) setup;
  { wk_replayer = replayer; wk_anchor = anchor }

(* --- reports --- *)

type worker_report = {
  w_id : int;
  w_executed : int;
  w_steals : int;
  w_respawns : int;
  w_setup_cycles : int64;   (* boot + prefix replay (all respawns) *)
  w_busy_cycles : int64;    (* modeled cycles executing test cases *)
  w_host_seconds : float;   (* host wall time inside tasks *)
}

type report = {
  r_jobs : int;
  r_workers : worker_report array;
  r_hub : Hub.t;  (* merged, in worker-id order *)
  r_model_wall_cycles : int64;
      (* critical path: max over workers of setup + busy *)
  r_model_busy_cycles : int64;  (* sum of executed-case cycles *)
  r_host_seconds : float;       (* host wall clock of the whole run *)
}

let utilization rep w =
  if rep.r_model_wall_cycles = 0L then 0.0
  else
    Int64.to_float (Int64.add w.w_setup_cycles w.w_busy_cycles)
    /. Int64.to_float rep.r_model_wall_cycles

let render_workers rep =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "  worker   cases  steals  respawns  busy(model s)  util\n";
  Array.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "  %6d  %6d  %6d  %8d  %13.3f  %4.0f%%\n" w.w_id
           w.w_executed w.w_steals w.w_respawns
           (cycles_to_seconds w.w_busy_cycles)
           (100.0 *. utilization rep w)))
    rep.r_workers;
  Buffer.add_string buf
    (Printf.sprintf "  model wall %.3fs  (ideal 1-worker %.3fs)\n"
       (cycles_to_seconds rep.r_model_wall_cycles)
       (cycles_to_seconds rep.r_model_busy_cycles));
  Buffer.contents buf

let build_report ~jobs ~hubs ~setups ~stats ~busy ~host_seconds =
  let merged = Hub.create () in
  Array.iter (fun h -> Hub.merge_into ~into:merged h) hubs;
  let workers =
    Array.init jobs (fun w ->
        { w_id = w;
          w_executed = stats.(w).Pool.executed;
          w_steals = stats.(w).Pool.steals;
          w_respawns = stats.(w).Pool.respawns;
          w_setup_cycles = setups.(w);
          w_busy_cycles = busy.(w);
          w_host_seconds = stats.(w).Pool.busy_seconds })
  in
  let wall =
    Array.fold_left
      (fun acc w -> Int64.(max acc (add w.w_setup_cycles w.w_busy_cycles)))
      0L workers
  in
  let total_busy =
    Array.fold_left (fun acc w -> Int64.add acc w.w_busy_cycles) 0L workers
  in
  { r_jobs = jobs;
    r_workers = workers;
    r_hub = merged;
    r_model_wall_cycles = wall;
    r_model_busy_cycles = total_busy;
    r_host_seconds = host_seconds }

(* --- mutant-level sharding: one campaign, cases fanned out --- *)

type fuzz_outcome = {
  fuzz_result : Campaign.result;
  fuzz_report : report;
}

let fuzz ?(jobs = 1) ~config ~recording ~reason ~area () =
  let trace = recording.Manager.trace in
  match Campaign.plan ~config ~trace ~reason ~area with
  | None -> None
  | Some plan ->
      let jobs = max 1 jobs in
      let seed_index = plan.Campaign.plan_target.Seed.index in
      let total = Campaign.case_count plan in
      let hubs = Array.init jobs (fun _ -> Hub.create ()) in
      let setups = Array.make jobs 0L in
      let init wid =
        boot_worker ~recording ~seed_index ~hub:hubs.(wid) ~setups wid
      in
      let task wk i =
        Campaign.execute_case ~replayer:wk.wk_replayer ~anchor:wk.wk_anchor
          (Campaign.case plan i)
      in
      (* Panic containment: a worker whose hypervisor context dies in
         a way the replayer could not triage still reports the crash
         verdict for its case; the pool respawns the worker. *)
      let on_crash exn _i =
        { Campaign.raw_failure = Campaign.Hypervisor_crash;
          raw_detail = "worker context died: " ^ Printexc.to_string exn;
          raw_span = Cov.Pset.empty;
          raw_cycles = 0L }
      in
      let host_t0 = Unix.gettimeofday () in
      let raws, stats, who = Pool.run ~jobs ~total ~init ~task ~on_crash in
      let host_seconds = Unix.gettimeofday () -. host_t0 in
      (* Ordered merge: verdicts, coverage and novelty recomputed in
         case-index order — byte-identical for any [jobs]. *)
      let result = Campaign.finalize ~plan ~raws in
      let busy = Array.make jobs 0L in
      Array.iteri
        (fun i raw ->
          let w = who.(i) in
          if w >= 0 && w < jobs then
            busy.(w) <- Int64.add busy.(w) raw.Campaign.raw_cycles)
        raws;
      let report =
        build_report ~jobs ~hubs ~setups ~stats ~busy ~host_seconds
      in
      (* Campaign-level aggregates on the merged hub: the same totals
         the sequential runner's instrument pack ends up with. *)
      let reg = report.r_hub.Hub.registry in
      let open Iris_telemetry.Registry in
      add (counter reg "fuzz.mutations") result.Campaign.executed;
      add (counter reg "fuzz.new_lines")
        (result.Campaign.fuzz_lines - result.Campaign.baseline_lines);
      add (counter reg "fuzz.vm_crashes") result.Campaign.vm_crashes;
      add (counter reg "fuzz.hv_crashes") result.Campaign.hv_crashes;
      set
        (gauge reg "fuzz.coverage_gain_pct")
        (Int64.of_float result.Campaign.coverage_increase_pct);
      Some { fuzz_result = result; fuzz_report = report }

(* --- case-level sharding: whole guided/naive runs fanned out --- *)

type sweep_outcome = {
  sweep_results : (Iris_vtx.Exit_reason.t * Guided.result option) array;
      (* one per requested reason, in request order *)
  sweep_report : report;
}

(* A guided run is inherently sequential (each round mutates the
   corpus previous rounds grew), so the unit of sharding is a whole
   run.  Each task builds a fresh dummy VM exactly like the
   sequential [Guided.run] does, with the probe attached from
   construction: every run (prefix replay included) executes exactly
   once globally, so merged counters stay partition-independent. *)
let guided_sweep ?(jobs = 1) ?(guided = true) ~config ~recording ~reasons () =
  let trace = recording.Manager.trace in
  let jobs = max 1 jobs in
  let total = Array.length reasons in
  let hubs = Array.init jobs (fun _ -> Hub.create ()) in
  let setups = Array.make jobs 0L in
  let busy = Array.make jobs 0L in
  let init wid = (wid, hubs.(wid)) in
  let task (wid, hub) i =
    let cov = Cov.create () in
    let hooks = Iris_hv.Hooks.create () in
    let ctx =
      Iris_hv.Xen.construct ~dummy:true ~cov ~hooks
        ~name:(Printf.sprintf "worker%d-dummy" wid) ()
    in
    ignore (Iris_hv.Observe.attach hub ctx : Iris_telemetry.Probe.t);
    Manager.arm_dummy ctx ~revert_to:(Some recording.Manager.snapshot)
      ~keep_memory:false;
    let replayer = Replayer.create ctx in
    let r =
      Guided.run_with ~config ~replayer ~trace ~reason:reasons.(i) ~guided ()
    in
    (match r with
    | Some g -> busy.(wid) <- Int64.add busy.(wid) g.Guided.total_cycles
    | None -> ());
    r
  in
  let on_crash _exn _i = None in
  let host_t0 = Unix.gettimeofday () in
  let results, stats, _who = Pool.run ~jobs ~total ~init ~task ~on_crash in
  let host_seconds = Unix.gettimeofday () -. host_t0 in
  let report = build_report ~jobs ~hubs ~setups ~stats ~busy ~host_seconds in
  { sweep_results = Array.mapi (fun i r -> (reasons.(i), r)) results;
    sweep_report = report }

(* --- differential sharding: recorded seeds fanned out across the
   VT-x/SVM oracle --- *)

module Diffcampaign = Iris_differential.Diffcampaign
module Oracle = Iris_differential.Oracle

type diff_outcome = {
  diff_report : Diffcampaign.report;
  diff_run : report;
}

(* Shard the differential sweep by contiguous trace segments: every
   worker boots an isolated VT-x universe anchored at S_0 plus its
   own SVM machine, and a segment's verdicts are a function of the
   trace prefix alone ([execute_segment] reverts to S_0 and replays
   the prefix before walking), so the index-ordered
   [Diffcampaign.finalize] merge is byte-identical for any [jobs].

   Workers deliberately do NOT attach a telemetry probe: a segment's
   prefix replay is repeated on steals and respawns, so per-exit
   counters could not merge partition-independently.  The merged hub
   instead carries the diff.* aggregates from
   [Analysis.note_backend_divergence]. *)
let diff_sweep ?(jobs = 1) ?plant ~recording () =
  let trace = recording.Manager.trace in
  let jobs = max 1 jobs in
  let segs =
    Diffcampaign.segments ~jobs ~total:(Diffcampaign.case_count trace)
  in
  let total = Array.length segs in
  let hubs = Array.init jobs (fun _ -> Hub.create ()) in
  let setups = Array.make jobs 0L in
  let init wid =
    let cov = Cov.create () in
    let hooks = Iris_hv.Hooks.create () in
    let ctx =
      Iris_hv.Xen.construct ~dummy:true ~cov ~hooks
        ~name:(Printf.sprintf "worker%d-dummy" wid) ()
    in
    Manager.arm_dummy ctx ~revert_to:(Some recording.Manager.snapshot)
      ~keep_memory:false;
    let replayer = Replayer.create ctx in
    let t0 = Iris_vtx.Clock.now (Ctx.clock ctx) in
    let anchor = Campaign.anchor ~replayer ~trace ~seed_index:0 () in
    let setup = Int64.sub (Iris_vtx.Clock.now (Ctx.clock ctx)) t0 in
    setups.(wid) <- Int64.add setups.(wid) setup;
    (replayer, anchor)
  in
  let task (replayer, anchor) i =
    Diffcampaign.execute_segment ?plant ~replayer ~anchor ~trace segs.(i)
  in
  (* A worker context dying outside the replayer's triage still yields
     deterministic crash-on-one verdicts for its segment. *)
  let on_crash exn i =
    let a, b = segs.(i) in
    Array.init (b - a) (fun k ->
        let seed = Diffcampaign.case trace (a + k) in
        { Oracle.v_index = seed.Seed.index;
          v_reason = Iris_vtx.Exit_reason.name seed.Seed.reason;
          v_class =
            Oracle.Crash_on_one
              { left_crash =
                  Some ("worker context died: " ^ Printexc.to_string exn);
                right_crash = None } })
  in
  let host_t0 = Unix.gettimeofday () in
  let per_segment, stats, _who =
    Pool.run ~jobs ~total ~init ~task ~on_crash
  in
  let host_seconds = Unix.gettimeofday () -. host_t0 in
  let verdicts = Array.concat (Array.to_list per_segment) in
  let result = Diffcampaign.finalize ?plant ~verdicts () in
  (* The submit/revert cycle accounting lives inside the backends, so
     model-busy attribution is not split per worker here; the run
     report still carries setup cycles and host-side utilization. *)
  let busy = Array.make jobs 0L in
  let run = build_report ~jobs ~hubs ~setups ~stats ~busy ~host_seconds in
  Iris_core.Analysis.note_backend_divergence ~hub:run.r_hub
    ~total:result.Diffcampaign.total
    ~comparable:result.Diffcampaign.comparable
    ~lossy:result.Diffcampaign.lossy
    ~findings:
      (List.map
         (fun f ->
           ( f.Diffcampaign.f_index,
             f.Diffcampaign.f_reason,
             f.Diffcampaign.f_kind ))
         result.Diffcampaign.findings);
  { diff_report = result; diff_run = run }
