(** Sharded index scheduler with chunked work-stealing.

    The task space is the dense range [0, total): test-case indices.
    Each worker owns a contiguous sub-range held as a two-pointer
    deque; the owner pops single indices from the low end, and a
    worker that runs dry steals the upper half of some victim's
    remaining range in one locked operation, installing it as its new
    deque.  Every index is dispensed exactly once. *)

type t

val create : total:int -> workers:int -> t
(** Splits [0, total) into [workers] contiguous ranges (sizes differ
    by at most one). *)

val workers : t -> int

val remaining : t -> int
(** Unclaimed indices across all deques — a racy snapshot, for tests
    and progress display only. *)

type take =
  | Own of int     (** popped from the worker's own deque *)
  | Stolen of int  (** first index of a freshly stolen chunk *)
  | Empty          (** every deque was empty at scan time *)

val take : t -> int -> take
(** [take t w] claims the next index for worker [w]: its own deque
    first, then a chunked steal from the other deques round-robin.
    [Empty] means worker [w] can retire — any work it did not see is
    owned (and will be finished) by its thief. *)
