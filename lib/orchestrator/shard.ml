(* Sharded index scheduler with chunked stealing.

   The task space is the dense range [0, total): test-case indices.
   Each worker owns a contiguous sub-range held as a two-pointer deque;
   the owner pops single indices from the low end, and a worker that
   runs dry steals the *upper half* of some victim's remaining range in
   one locked operation (chunked stealing), installing it as its new
   deque.  Contiguous chunks keep each worker's execution order mostly
   sequential in index space, which is irrelevant for correctness (the
   merge is index-ordered) but keeps per-worker behavior easy to read
   in traces.

   A plain mutex per deque is plenty here: a "task" is a full test-case
   replay (thousands of modeled cycles), so scheduler contention is
   noise.  What matters is that every index is dispensed exactly once,
   which the lock makes trivially auditable. *)

type deque = {
  lock : Mutex.t;
  mutable lo : int;  (* next index the owner pops *)
  mutable hi : int;  (* one past the last index of the range *)
}

type t = { deques : deque array }

let create ~total ~workers =
  let workers = max 1 workers in
  { deques =
      Array.init workers (fun w ->
          { lock = Mutex.create ();
            lo = total * w / workers;
            hi = total * (w + 1) / workers }) }

let workers t = Array.length t.deques

(* How many indices remain unclaimed (racy snapshot; for tests and
   progress display only). *)
let remaining t =
  Array.fold_left
    (fun acc d ->
      Mutex.lock d.lock;
      let n = max 0 (d.hi - d.lo) in
      Mutex.unlock d.lock;
      acc + n)
    0 t.deques

type take =
  | Own of int     (* popped from the worker's own deque *)
  | Stolen of int  (* first index of a freshly stolen chunk *)
  | Empty          (* every deque was empty at scan time *)

let pop_own d =
  Mutex.lock d.lock;
  let r =
    if d.lo < d.hi then begin
      let i = d.lo in
      d.lo <- i + 1;
      Some i
    end
    else None
  in
  Mutex.unlock d.lock;
  r

(* Detach the upper half (at least one index) of the victim's range. *)
let steal_from d =
  Mutex.lock d.lock;
  let r =
    let n = d.hi - d.lo in
    if n <= 0 then None
    else begin
      let k = (n + 1) / 2 in
      let mid = d.hi - k in
      d.hi <- mid;
      Some (mid, mid + k)
    end
  in
  Mutex.unlock d.lock;
  r

let take t w =
  let n = Array.length t.deques in
  let own = t.deques.(w) in
  match pop_own own with
  | Some i -> Own i
  | None ->
      (* Scan the other deques round-robin from our right neighbour.
         A chunk in transit always belongs to exactly one worker, so
         a worker that sees everything empty can retire: the work it
         missed is owned (and will be finished) by its thief. *)
      let rec scan k =
        if k >= n - 1 then Empty
        else
          let v = (w + 1 + k) mod n in
          match steal_from t.deques.(v) with
          | Some (lo, hi) ->
              Mutex.lock own.lock;
              own.lo <- lo + 1;
              own.hi <- hi;
              Mutex.unlock own.lock;
              Stolen lo
          | None -> scan (k + 1)
      in
      scan 0
