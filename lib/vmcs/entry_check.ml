type failure =
  | Invalid_control of string
  | Invalid_host_state of string
  | Invalid_guest_state of string

let failure_message = function
  | Invalid_control m -> "invalid control field: " ^ m
  | Invalid_host_state m -> "invalid host state: " ^ m
  | Invalid_guest_state m -> "invalid guest state: " ^ m

let pp_failure fmt f = Format.pp_print_string fmt (failure_message f)

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

(* ---- Control-field checks (SDM 26.2.1) ---- *)

(* These run on every VM entry, so they are written as plain if/else
   chains over direct reads: the [let*] continuation closures this
   replaced were a per-entry allocation with nothing to show for it on
   the success path. *)

let has v mask = Int64.logand v mask = mask

let check_controls vmcs =
  let pin = Vmcs.read vmcs Field.pin_based_vm_exec_control in
  let cpu = Vmcs.read vmcs Field.cpu_based_vm_exec_control in
  let entry = Vmcs.read vmcs Field.vm_entry_controls in
  let exit = Vmcs.read vmcs Field.vm_exit_controls in
  if not (has pin Controls.pin_reserved_one_mask) then
    Error (Invalid_control "pin-based controls: default1 bits clear")
  else if not (has cpu Controls.cpu_reserved_one_mask) then
    Error (Invalid_control "proc-based controls: default1 bits clear")
  else if not (has entry Controls.entry_reserved_one_mask) then
    Error (Invalid_control "entry controls: default1 bits clear")
  else if not (has exit Controls.exit_reserved_one_mask) then
    Error (Invalid_control "exit controls: default1 bits clear")
  else if
    (* CR3-target count must be at most 4. *)
    Vmcs.read vmcs Field.cr3_target_count > 4L
  then Error (Invalid_control "CR3-target count > 4")
  else begin
    let info = Vmcs.read vmcs Field.vm_entry_intr_info in
    if not (Controls.intr_info_is_valid info) then Ok ()
    else begin
      match Controls.intr_info_type info with
      | None -> Error (Invalid_control "entry interruption info: bad type")
      | Some Controls.Hardware_exception
        when Controls.intr_info_vector info > 31 ->
          Error
            (Invalid_control "entry interruption info: exception vector > 31")
      | Some Controls.Nmi when Controls.intr_info_vector info <> 2 ->
          Error (Invalid_control "entry interruption info: NMI vector not 2")
      | Some _ -> Ok ()
    end
  end

(* ---- Host-state checks (SDM 26.2.2/26.2.3) ---- *)

let canonical addr =
  let top = Int64.shift_right addr 47 in
  top = 0L || top = -1L

let check_host_state vmcs =
  let cr0 = Vmcs.read vmcs Field.host_cr0 in
  let cr4 = Vmcs.read vmcs Field.host_cr4 in
  let rip = Vmcs.read vmcs Field.host_rip in
  let cs_sel = Vmcs.read vmcs Field.host_cs_selector in
  let tr_sel = Vmcs.read vmcs Field.host_tr_selector in
  if
    not
      (Iris_x86.Cr0.test cr0 Iris_x86.Cr0.PE
      && Iris_x86.Cr0.test cr0 Iris_x86.Cr0.PG)
  then Error (Invalid_host_state "host CR0 must have PE and PG")
  else if not (Iris_x86.Cr4.test cr4 Iris_x86.Cr4.VMXE) then
    Error (Invalid_host_state "host CR4.VMXE clear")
  else if not (rip <> 0L && canonical rip) then
    Error (Invalid_host_state "host RIP zero or non-canonical")
  else if not (cs_sel <> 0L && Int64.logand cs_sel 0x7L = 0L) then
    Error (Invalid_host_state "host CS selector null or bad RPL/TI")
  else if Int64.logand tr_sel 0x7L = 0L && tr_sel <> 0L then Ok ()
  else Error (Invalid_host_state "host TR selector null or bad RPL/TI")

(* ---- Guest-state checks (SDM 26.3.1) ---- *)

let seg_of vmcs name =
  let sel_f, base_f, limit_f, ar_f = Field.segment_fields name in
  { Iris_x86.Segment.selector = Int64.to_int (Vmcs.read vmcs sel_f);
    base = Vmcs.read vmcs base_f;
    limit = Vmcs.read vmcs limit_f;
    ar = Int64.to_int (Vmcs.read vmcs ar_f) }

let guest_checks :
    (string * (Vmcs.t -> (unit, string) result)) list =
  let rd vmcs f = Vmcs.read vmcs f in
  let open Iris_x86 in
  [
    ( "cr0",
      fun vmcs ->
        if Cr0.valid (rd vmcs Field.guest_cr0) then Ok ()
        else Error "guest CR0 fixed-bit violation (PG without PE, or NW \
                    without CD)" );
    ( "cr4",
      fun vmcs ->
        if Cr4.valid (rd vmcs Field.guest_cr4) then Ok ()
        else Error "guest CR4 reserved bit set" );
    ( "cr3",
      fun vmcs ->
        let cr3 = rd vmcs Field.guest_cr3 in
        if Int64.shift_right_logical cr3 48 = 0L then Ok ()
        else Error "guest CR3 exceeds physical-address width" );
    ( "rflags",
      fun vmcs ->
        if Rflags.entry_valid (rd vmcs Field.guest_rflags) then Ok ()
        else Error "guest RFLAGS reserved-bit violation" );
    ( "rflags-if",
      fun vmcs ->
        let info = rd vmcs Field.vm_entry_intr_info in
        if
          Controls.intr_info_is_valid info
          && Controls.intr_info_type info = Some Controls.External_interrupt
          && not (Rflags.test (rd vmcs Field.guest_rflags) Rflags.IF)
        then Error "external-interrupt injection with RFLAGS.IF clear"
        else Ok () );
    ( "cs",
      fun vmcs ->
        if Segment.entry_valid_cs (seg_of vmcs Segment.Cs) then Ok ()
        else Error "guest CS unusable, not present, or not code" );
    ( "cs-l",
      fun vmcs ->
        (* A long-mode code segment is only legal when the entry is an
           IA-32e-mode entry (SDM 26.3.1.2). *)
        let cs = seg_of vmcs Segment.Cs in
        let entry = rd vmcs Field.vm_entry_controls in
        if
          (not (Segment.unusable cs))
          && Segment.ar_long cs
          && Int64.logand entry Controls.entry_ia32e_mode_guest = 0L
        then Error "CS.L set outside IA-32e mode"
        else Ok () );
    ( "tr",
      fun vmcs ->
        if Segment.entry_valid_tr (seg_of vmcs Segment.Tr) then Ok ()
        else Error "guest TR unusable or not a busy TSS" );
    ( "ldtr",
      fun vmcs ->
        let l = seg_of vmcs Segment.Ldtr in
        if Segment.unusable l then Ok ()
        else if (not (Segment.ar_s l)) && Segment.ar_type l = 2 then Ok ()
        else Error "guest LDTR usable but not an LDT descriptor" );
    ( "ss-rpl",
      fun vmcs ->
        (* In protected mode without unrestricted guest, SS.RPL must
           equal CS.RPL. *)
        let cr0 = rd vmcs Field.guest_cr0 in
        if not (Cr0.test cr0 Cr0.PE) then Ok ()
        else begin
          let cs = seg_of vmcs Segment.Cs and ss = seg_of vmcs Segment.Ss in
          if Segment.unusable ss then Ok ()
          else if cs.Segment.selector land 3 = ss.Segment.selector land 3 then
            Ok ()
          else Error "SS.RPL differs from CS.RPL"
        end );
    ( "rip",
      fun vmcs ->
        (* "bad RIP for mode": outside IA-32e-mode code, RIP must fit
           the 32-bit instruction pointer; in real mode it must also
           lie within the CS limit. *)
        let rip = rd vmcs Field.guest_rip in
        let cr0 = rd vmcs Field.guest_cr0 in
        let cs = seg_of vmcs Segment.Cs in
        let entry = rd vmcs Field.vm_entry_controls in
        let ia32e =
          Int64.logand entry Controls.entry_ia32e_mode_guest <> 0L
          && Segment.ar_long cs
        in
        if ia32e then
          if canonical rip then Ok () else Error "non-canonical RIP"
        else if Int64.shift_right_logical rip 32 <> 0L then
          Error
            (Printf.sprintf "bad RIP for mode %d"
               (Cpu_mode.to_int (Cpu_mode.of_cr0 cr0) - 1))
        else if
          (not (Cr0.test cr0 Cr0.PE))
          && rip > cs.Segment.limit
        then
          Error
            (Printf.sprintf "bad RIP for mode %d"
               (Cpu_mode.to_int (Cpu_mode.of_cr0 cr0) - 1))
        else Ok () );
    ( "activity",
      fun vmcs ->
        if Controls.activity_valid (rd vmcs Field.guest_activity_state) then
          Ok ()
        else Error "invalid activity state" );
    ( "interruptibility",
      fun vmcs ->
        if
          Controls.interruptibility_valid
            (rd vmcs Field.guest_interruptibility_info)
        then Ok ()
        else Error "invalid interruptibility state" );
    ( "link-pointer",
      fun vmcs ->
        if rd vmcs Field.vmcs_link_pointer = -1L then Ok ()
        else Error "VMCS link pointer not 0xFFFFFFFF_FFFFFFFF" );
    ( "efer",
      fun vmcs ->
        let entry = rd vmcs Field.vm_entry_controls in
        if Int64.logand entry Controls.entry_load_ia32_efer = 0L then Ok ()
        else begin
          let efer = rd vmcs Field.guest_ia32_efer in
          let ia32e =
            Int64.logand entry Controls.entry_ia32e_mode_guest <> 0L
          in
          if not (Msr.efer_valid efer) then Error "guest EFER reserved bits"
          else begin
            let lma = Int64.logand efer Msr.efer_lma <> 0L in
            if lma <> ia32e then
              Error "EFER.LMA inconsistent with IA-32e-mode entry control"
            else Ok ()
          end
        end );
    ( "pdpte",
      fun vmcs ->
        (* PAE paging: PDPTEs must have reserved bits clear. *)
        let cr0 = rd vmcs Field.guest_cr0 in
        let cr4 = rd vmcs Field.guest_cr4 in
        let entry = rd vmcs Field.vm_entry_controls in
        let ia32e = Int64.logand entry Controls.entry_ia32e_mode_guest <> 0L in
        if
          Cr0.test cr0 Cr0.PG && Cr4.test cr4 Cr4.PAE && not ia32e
        then begin
          let bad =
            List.exists
              (fun f ->
                let v = rd vmcs f in
                (* Present PDPTE with any reserved bit 1,2,5..8 set. *)
                Int64.logand v 1L <> 0L && Int64.logand v 0x1E6L <> 0L)
              [ Field.guest_pdpte0; Field.guest_pdpte1; Field.guest_pdpte2;
                Field.guest_pdpte3 ]
          in
          if bad then Error "PDPTE reserved bits set" else Ok ()
        end
        else Ok () );
  ]

let guest_check_names = List.map fst guest_checks

let check_guest_state vmcs =
  let rec loop = function
    | [] -> Ok ()
    | (_, check) :: rest -> (
        match check vmcs with
        | Ok () -> loop rest
        | Error msg -> Error (Invalid_guest_state msg))
  in
  loop guest_checks

let run vmcs =
  let* () = check_controls vmcs in
  let* () = check_host_state vmcs in
  check_guest_state vmcs
