(** VMCS field table.

    Every field the model supports, keyed by its architectural 16-bit
    encoding (SDM Appendix B).  The encoding packs the access width in
    bits 13..14 and the field type (control / read-only data / guest
    state / host state) in bits 10..11; we expose both decoded
    properties and a dense 1-byte [compact] index, which is what the
    IRIS seed wire format stores ("the encoding (1 byte) of ... VMCS
    fields (147 values)", §V-A).

    Fields in the exit-information area are read-only: VMWRITE to them
    fails (the CPUs of the paper's era lack "VMWRITE to any field"),
    which is why the IRIS replayer must shim VMREAD return values for
    them instead of writing the VMCS. *)

type t = private int
(** Dense index, stable across runs; usable as the compact wire
    encoding. *)

type width = W16 | W32 | W64 | Wnat

type area =
  | Ctrl       (** VM-execution / entry / exit controls *)
  | Exit_info  (** read-only exit information *)
  | Guest      (** guest-state area *)
  | Host       (** host-state area *)

val def : string -> int -> width -> area -> t
(** Register a field. Only usable during module initialisation: the
    table is frozen once built (the dense indices are a wire format
    and the table is shared read-only across worker domains), and any
    later call raises [Invalid_argument]. *)

val is_frozen : unit -> bool
(** True once the table is built; [def] raises from then on. *)

val compact : t -> int
val of_compact : int -> t option
val count : int
(** Total number of fields in the table. *)

val encoding16 : t -> int
(** Architectural encoding. *)

val of_encoding16 : int -> t option
val name : t -> string
val width : t -> width
val area : t -> area
val readonly : t -> bool
(** True exactly for [Exit_info] fields. *)

val width_bytes : t -> int
(** 2, 4 or 8 ([Wnat] is 8: the model is a 64-bit machine). *)

val truncate : t -> int64 -> int64
(** Truncate a value to the field's width, as VMWRITE does. *)

val all : t array
(** All fields in compact order. *)

val in_area : area -> t list

val exists : int -> bool
(** Whether a 16-bit encoding is in the table ([VMREAD]/[VMWRITE] of
    an unsupported encoding VMfails). *)

val pp : Format.formatter -> t -> unit

(** {2 Named fields}

    Grouped as in SDM Appendix B. Only the ones the hypervisor model
    manipulates are listed individually; the rest are still in {!all}
    and reachable by encoding. *)

(* 16-bit control *)
val vpid : t

(* 16-bit guest state *)
val guest_es_selector : t
val guest_cs_selector : t
val guest_ss_selector : t
val guest_ds_selector : t
val guest_fs_selector : t
val guest_gs_selector : t
val guest_ldtr_selector : t
val guest_tr_selector : t
val guest_interrupt_status : t

(* 16-bit host state *)
val host_es_selector : t
val host_cs_selector : t
val host_ss_selector : t
val host_ds_selector : t
val host_fs_selector : t
val host_gs_selector : t
val host_tr_selector : t

(* 64-bit control *)
val io_bitmap_a : t
val io_bitmap_b : t
val msr_bitmap : t
val vm_exit_msr_store_addr : t
val vm_exit_msr_load_addr : t
val vm_entry_msr_load_addr : t
val tsc_offset : t
val virtual_apic_page_addr : t
val apic_access_addr : t
val ept_pointer : t

(* 64-bit read-only *)
val guest_physical_address : t

(* 64-bit guest state *)
val vmcs_link_pointer : t
val guest_ia32_debugctl : t
val guest_ia32_pat : t
val guest_ia32_efer : t
val guest_pdpte0 : t
val guest_pdpte1 : t
val guest_pdpte2 : t
val guest_pdpte3 : t

(* 64-bit host state *)
val host_ia32_pat : t
val host_ia32_efer : t

(* 32-bit control *)
val pin_based_vm_exec_control : t
val cpu_based_vm_exec_control : t
val exception_bitmap : t
val page_fault_error_code_mask : t
val page_fault_error_code_match : t
val cr3_target_count : t
val vm_exit_controls : t
val vm_exit_msr_store_count : t
val vm_exit_msr_load_count : t
val vm_entry_controls : t
val vm_entry_msr_load_count : t
val vm_entry_intr_info : t
val vm_entry_exception_error_code : t
val vm_entry_instruction_len : t
val tpr_threshold : t
val secondary_vm_exec_control : t

(* 32-bit read-only *)
val vm_instruction_error : t
val vm_exit_reason : t
val vm_exit_intr_info : t
val vm_exit_intr_error_code : t
val idt_vectoring_info : t
val idt_vectoring_error_code : t
val vm_exit_instruction_len : t
val vmx_instruction_info : t

(* 32-bit guest state *)
val guest_es_limit : t
val guest_cs_limit : t
val guest_ss_limit : t
val guest_ds_limit : t
val guest_fs_limit : t
val guest_gs_limit : t
val guest_ldtr_limit : t
val guest_tr_limit : t
val guest_gdtr_limit : t
val guest_idtr_limit : t
val guest_es_ar_bytes : t
val guest_cs_ar_bytes : t
val guest_ss_ar_bytes : t
val guest_ds_ar_bytes : t
val guest_fs_ar_bytes : t
val guest_gs_ar_bytes : t
val guest_ldtr_ar_bytes : t
val guest_tr_ar_bytes : t
val guest_interruptibility_info : t
val guest_activity_state : t
val guest_sysenter_cs : t
val guest_preemption_timer : t

(* 32-bit host state *)
val host_sysenter_cs : t

(* natural-width control *)
val cr0_guest_host_mask : t
val cr4_guest_host_mask : t
val cr0_read_shadow : t
val cr4_read_shadow : t
val cr3_target_value0 : t
val cr3_target_value1 : t
val cr3_target_value2 : t
val cr3_target_value3 : t

(* natural-width read-only *)
val exit_qualification : t
val io_rcx : t
val io_rsi : t
val io_rdi : t
val io_rip : t
val guest_linear_address : t

(* natural-width guest state *)
val guest_cr0 : t
val guest_cr3 : t
val guest_cr4 : t
val guest_es_base : t
val guest_cs_base : t
val guest_ss_base : t
val guest_ds_base : t
val guest_fs_base : t
val guest_gs_base : t
val guest_ldtr_base : t
val guest_tr_base : t
val guest_gdtr_base : t
val guest_idtr_base : t
val guest_dr7 : t
val guest_rsp : t
val guest_rip : t
val guest_rflags : t
val guest_pending_dbg_exceptions : t
val guest_sysenter_esp : t
val guest_sysenter_eip : t

(* natural-width host state *)
val host_cr0 : t
val host_cr3 : t
val host_cr4 : t
val host_fs_base : t
val host_gs_base : t
val host_tr_base : t
val host_gdtr_base : t
val host_idtr_base : t
val host_sysenter_esp : t
val host_sysenter_eip : t
val host_rsp : t
val host_rip : t

val segment_fields :
  Iris_x86.Segment.name -> t * t * t * t
(** [(selector, base, limit, ar)] fields of a guest segment
    register. *)
