type launch_state = Clear | Active_current_clear | Active_current_launched

(* One copy-on-write epoch: the prior value of every field written
   since the checkpoint that opened the epoch, plus the launch state
   at that instant.

   The epoch is a dense journal over the compact field space — an
   old-value slot and a seen byte per field plus a dirty-index stack —
   so the per-write probe is a single byte load instead of the
   mem-then-add double Hashtbl lookup it replaced, and rewind/commit
   walk only the dirty stack.  Journals are pooled on [t] so steady-
   state checkpointing allocates nothing. *)
type journal = {
  j_old : int64 array;   (* old value per touched compact index *)
  j_seen : Bytes.t;      (* '\001' when the index is journaled *)
  j_dirty : int array;   (* touched indices, oldest first *)
  mutable j_n : int;
  mutable j_launch : launch_state;
}

type t = {
  values : int64 array; (* indexed by Field.compact *)
  mutable launch : launch_state;
  mutable journals : journal list;  (* innermost epoch first *)
  mutable pool : journal list;      (* recycled epochs *)
}

let fresh_journal launch =
  { j_old = Array.make Field.count 0L;
    j_seen = Bytes.make Field.count '\000';
    j_dirty = Array.make Field.count 0;
    j_n = 0;
    j_launch = launch }

let clear_journal j =
  for k = 0 to j.j_n - 1 do
    Bytes.unsafe_set j.j_seen j.j_dirty.(k) '\000'
  done;
  j.j_n <- 0

let revision_id = 0x00DE5E27L

let create () =
  { values = Array.make Field.count 0L; launch = Clear; journals = [];
    pool = [] }

let state t = t.launch

let vmclear t = t.launch <- Clear

let set_active t =
  match t.launch with
  | Clear -> t.launch <- Active_current_clear
  | Active_current_clear | Active_current_launched -> ()

let mark_launched t = t.launch <- Active_current_launched

let is_launched t = t.launch = Active_current_launched

type access_error =
  | Unsupported_field of int
  | Readonly_field of Field.t

let read t f = t.values.(Field.compact f)

let journal_write t idx =
  match t.journals with
  | [] -> ()
  | j :: _ ->
      (* Single probe: one byte load decides; no second lookup on the
         insert path. *)
      if Bytes.unsafe_get j.j_seen idx = '\000' then begin
        Bytes.unsafe_set j.j_seen idx '\001';
        j.j_old.(idx) <- t.values.(idx);
        j.j_dirty.(j.j_n) <- idx;
        j.j_n <- j.j_n + 1
      end

let write t f v =
  if Field.readonly f then Error (Readonly_field f)
  else begin
    let idx = Field.compact f in
    journal_write t idx;
    t.values.(idx) <- Field.truncate f v;
    Ok ()
  end

let write_exit_info t f v =
  (* Processor-internal writes touch the exit-info area, the guest
     area (state save), and entry controls (clearing the event-
     injection valid bit); never the host area. *)
  assert (Field.area f <> Field.Host);
  let idx = Field.compact f in
  journal_write t idx;
  t.values.(idx) <- Field.truncate f v

let read_by_encoding t enc =
  match Field.of_encoding16 enc with
  | None -> Error (Unsupported_field enc)
  | Some f -> Ok (read t f)

let write_by_encoding t enc v =
  match Field.of_encoding16 enc with
  | None -> Error (Unsupported_field enc)
  | Some f -> write t f v

let copy t =
  { values = Array.copy t.values; launch = t.launch; journals = []; pool = [] }

let recycle t j =
  clear_journal j;
  t.pool <- j :: t.pool

let restore_from t ~src =
  Array.blit src.values 0 t.values 0 Field.count;
  t.launch <- src.launch;
  (* Full restore: any outstanding checkpoints are meaningless now. *)
  List.iter (recycle t) t.journals;
  t.journals <- []

(* --- incremental (copy-on-write) checkpoints --- *)

type checkpoint = int

let checkpoint t =
  let j =
    match t.pool with
    | j :: rest ->
        t.pool <- rest;
        j.j_launch <- t.launch;
        j
    | [] -> fresh_journal t.launch
  in
  t.journals <- j :: t.journals;
  List.length t.journals

let checkpoint_depth t = List.length t.journals

let journaled_fields t =
  match t.journals with [] -> 0 | j :: _ -> j.j_n

let apply_journal t j =
  for k = 0 to j.j_n - 1 do
    let idx = j.j_dirty.(k) in
    t.values.(idx) <- j.j_old.(idx)
  done;
  t.launch <- j.j_launch;
  j.j_n

let rewind t cp =
  if cp <= 0 || cp > List.length t.journals then
    invalid_arg "Vmcs.rewind: stale checkpoint";
  let restored = ref 0 in
  let rec undo = function
    | [] -> assert false
    | j :: rest as js ->
        restored := !restored + apply_journal t j;
        if List.length js = cp then begin
          clear_journal j;
          t.journals <- js
        end
        else begin
          recycle t j;
          undo rest
        end
  in
  undo t.journals;
  !restored

let commit t cp =
  if cp = 0 || cp <> List.length t.journals then
    invalid_arg "Vmcs.commit: not the innermost checkpoint";
  match t.journals with
  | [] -> assert false
  | j :: rest ->
      (match rest with
      | [] -> ()
      | parent :: _ ->
          for k = 0 to j.j_n - 1 do
            let idx = j.j_dirty.(k) in
            if Bytes.unsafe_get parent.j_seen idx = '\000' then begin
              Bytes.unsafe_set parent.j_seen idx '\001';
              parent.j_old.(idx) <- j.j_old.(idx);
              parent.j_dirty.(parent.j_n) <- idx;
              parent.j_n <- parent.j_n + 1
            end
          done);
      recycle t j;
      t.journals <- rest

let equal_area a b area =
  List.for_all
    (fun f -> read a f = read b f)
    (Field.in_area area)

let nonzero_fields t =
  Array.to_list Field.all
  |> List.filter_map (fun f ->
         let v = read t f in
         if v <> 0L then Some (f, v) else None)

let pp fmt t =
  let st =
    match t.launch with
    | Clear -> "clear"
    | Active_current_clear -> "active-current-clear"
    | Active_current_launched -> "active-current-launched"
  in
  Format.fprintf fmt "@[<v>VMCS (%s)@ " st;
  List.iter
    (fun (f, v) -> Format.fprintf fmt "%s = 0x%Lx@ " (Field.name f) v)
    (nonzero_fields t);
  Format.fprintf fmt "@]"
