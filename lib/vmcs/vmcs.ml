type launch_state = Clear | Active_current_clear | Active_current_launched

(* One copy-on-write epoch: the prior value of every field written
   since the checkpoint that opened the epoch, plus the launch state
   at that instant. *)
type journal = {
  j_old : (int, int64) Hashtbl.t;  (* compact index -> old value *)
  j_launch : launch_state;
}

type t = {
  values : int64 array; (* indexed by Field.compact *)
  mutable launch : launch_state;
  mutable journals : journal list;  (* innermost epoch first *)
}

let revision_id = 0x00DE5E27L

let create () =
  { values = Array.make Field.count 0L; launch = Clear; journals = [] }

let state t = t.launch

let vmclear t = t.launch <- Clear

let set_active t =
  match t.launch with
  | Clear -> t.launch <- Active_current_clear
  | Active_current_clear | Active_current_launched -> ()

let mark_launched t = t.launch <- Active_current_launched

let is_launched t = t.launch = Active_current_launched

type access_error =
  | Unsupported_field of int
  | Readonly_field of Field.t

let read t f = t.values.(Field.compact f)

let journal_write t idx =
  match t.journals with
  | [] -> ()
  | j :: _ ->
      if not (Hashtbl.mem j.j_old idx) then
        Hashtbl.add j.j_old idx t.values.(idx)

let write t f v =
  if Field.readonly f then Error (Readonly_field f)
  else begin
    let idx = Field.compact f in
    journal_write t idx;
    t.values.(idx) <- Field.truncate f v;
    Ok ()
  end

let write_exit_info t f v =
  (* Processor-internal writes touch the exit-info area, the guest
     area (state save), and entry controls (clearing the event-
     injection valid bit); never the host area. *)
  assert (Field.area f <> Field.Host);
  let idx = Field.compact f in
  journal_write t idx;
  t.values.(idx) <- Field.truncate f v

let read_by_encoding t enc =
  match Field.of_encoding16 enc with
  | None -> Error (Unsupported_field enc)
  | Some f -> Ok (read t f)

let write_by_encoding t enc v =
  match Field.of_encoding16 enc with
  | None -> Error (Unsupported_field enc)
  | Some f -> write t f v

let copy t =
  { values = Array.copy t.values; launch = t.launch; journals = [] }

let restore_from t ~src =
  Array.blit src.values 0 t.values 0 Field.count;
  t.launch <- src.launch;
  (* Full restore: any outstanding checkpoints are meaningless now. *)
  t.journals <- []

(* --- incremental (copy-on-write) checkpoints --- *)

type checkpoint = int

let checkpoint t =
  t.journals <- { j_old = Hashtbl.create 8; j_launch = t.launch } :: t.journals;
  List.length t.journals

let checkpoint_depth t = List.length t.journals

let journaled_fields t =
  match t.journals with [] -> 0 | j :: _ -> Hashtbl.length j.j_old

let apply_journal t j =
  Hashtbl.iter (fun idx old -> t.values.(idx) <- old) j.j_old;
  t.launch <- j.j_launch;
  Hashtbl.length j.j_old

let rewind t cp =
  if cp <= 0 || cp > List.length t.journals then
    invalid_arg "Vmcs.rewind: stale checkpoint";
  let restored = ref 0 in
  let rec undo = function
    | [] -> assert false
    | j :: rest as js ->
        restored := !restored + apply_journal t j;
        if List.length js = cp then begin
          Hashtbl.reset j.j_old;
          t.journals <- js
        end
        else undo rest
  in
  undo t.journals;
  !restored

let commit t cp =
  if cp = 0 || cp <> List.length t.journals then
    invalid_arg "Vmcs.commit: not the innermost checkpoint";
  match t.journals with
  | [] -> assert false
  | j :: rest ->
      (match rest with
      | [] -> ()
      | parent :: _ ->
          Hashtbl.iter
            (fun idx old ->
              if not (Hashtbl.mem parent.j_old idx) then
                Hashtbl.add parent.j_old idx old)
            j.j_old);
      t.journals <- rest

let equal_area a b area =
  List.for_all
    (fun f -> read a f = read b f)
    (Field.in_area area)

let nonzero_fields t =
  Array.to_list Field.all
  |> List.filter_map (fun f ->
         let v = read t f in
         if v <> 0L then Some (f, v) else None)

let pp fmt t =
  let st =
    match t.launch with
    | Clear -> "clear"
    | Active_current_clear -> "active-current-clear"
    | Active_current_launched -> "active-current-launched"
  in
  Format.fprintf fmt "@[<v>VMCS (%s)@ " st;
  List.iter
    (fun (f, v) -> Format.fprintf fmt "%s = 0x%Lx@ " (Field.name f) v)
    (nonzero_fields t);
  Format.fprintf fmt "@]"
