(** The Virtual Machine Control Structure.

    One VMCS per vCPU.  Apart from its first eight bytes (revision id
    and abort indicator) the structure may only be accessed with
    VMREAD/VMWRITE (SDM 24.11.1) — the type is abstract to enforce
    that in the model too.  The VMCS tracks the hardware launch state
    driven by VMCLEAR / VMPTRLD / VMLAUNCH (Fig. 1 of the paper):
    [Clear] → (VMPTRLD) → [Active_current_clear] → (VMLAUNCH) →
    [Active_current_launched]. *)

type launch_state = Clear | Active_current_clear | Active_current_launched

type t

val revision_id : int64
(** The model's VMCS revision identifier. *)

val create : unit -> t
(** An uninitialised VMCS region (state [Clear], all fields zero). *)

val state : t -> launch_state

val vmclear : t -> unit
(** Initialise / flush: zero launch state back to [Clear]. Field
    values persist (as on hardware, where they live in memory). *)

val set_active : t -> unit
(** VMPTRLD effect: [Clear] → [Active_current_clear]; keeps launched
    state otherwise. *)

val mark_launched : t -> unit
val is_launched : t -> bool

type access_error =
  | Unsupported_field of int  (** encoding not in the table *)
  | Readonly_field of Field.t (** VMWRITE to exit-information area *)

val read : t -> Field.t -> int64
(** Hardware VMREAD of a supported field: always succeeds. *)

val write : t -> Field.t -> int64 -> (unit, access_error) result
(** Hardware VMWRITE: truncates to field width; fails on read-only
    fields. *)

val write_exit_info : t -> Field.t -> int64 -> unit
(** Processor-internal write used when the CPU itself records exit
    information; bypasses the read-only restriction.  Asserts the
    field is in the exit-info area or guest area. *)

val read_by_encoding : t -> int -> (int64, access_error) result
val write_by_encoding : t -> int -> int64 -> (unit, access_error) result

val copy : t -> t
(** Deep copy for snapshots. *)

val restore_from : t -> src:t -> unit
(** Overwrite all fields and the launch state of [t] from [src],
    keeping [t]'s identity (existing current-VMCS pointers stay
    valid).  Snapshot-revert plumbing, not an architectural
    operation. *)

(** {2 Incremental (copy-on-write) checkpoints}

    A checkpoint opens a VMWRITE journal: the first write to each
    field saves its prior value, so {!rewind} undoes only the fields
    the epoch actually touched — the kAFL/Nyx snapshot-reset trick
    applied to the VMCS.  Checkpoints nest (LIFO); {!restore_from},
    the full-restore path, invalidates all of them. *)

type checkpoint

val checkpoint : t -> checkpoint
(** Open a new epoch; also captures the launch state. *)

val rewind : t -> checkpoint -> int
(** Restore the state captured at [checkpoint] (which stays live),
    discarding checkpoints nested inside it.  Returns the number of
    field restores performed.  Raises [Invalid_argument] on a stale
    checkpoint. *)

val commit : t -> checkpoint -> unit
(** Drop the innermost checkpoint, folding its journal into the
    parent epoch. *)

val checkpoint_depth : t -> int

val journaled_fields : t -> int
(** Fields dirtied so far in the innermost open epoch. *)

val equal_area : t -> t -> Field.area -> bool
(** Field-wise equality over one area. *)

val nonzero_fields : t -> (Field.t * int64) list
(** For debugging/inspection: all fields with a non-zero value. *)

val pp : Format.formatter -> t -> unit
