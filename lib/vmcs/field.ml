type t = int

type width = W16 | W32 | W64 | Wnat

type area = Ctrl | Exit_info | Guest | Host

type info = {
  f_name : string;
  f_enc : int;
  f_width : width;
  f_area : area;
}

(* The table is built by registration: [def] appends an entry and
   returns its dense index, so declaration order defines the compact
   1-byte encoding used on the seed wire format. *)
let registry : info list ref = ref []

let registry_count = ref 0

(* Once the table below is built the registry is frozen: the dense
   indices are a wire format and the table is shared read-only across
   orchestrator worker domains, so late registration is a bug. *)
let frozen = ref false

let def f_name f_enc f_width f_area =
  if !frozen then
    invalid_arg ("Field.def: registry frozen (late registration of " ^ f_name ^ ")");
  registry := { f_name; f_enc; f_width; f_area } :: !registry;
  let idx = !registry_count in
  incr registry_count;
  idx

(* --- 16-bit control fields --- *)
let vpid = def "VPID" 0x0000 W16 Ctrl
let posted_intr_nv = def "POSTED_INTR_NOTIFICATION_VECTOR" 0x0002 W16 Ctrl
let eptp_index = def "EPTP_INDEX" 0x0004 W16 Ctrl

(* --- 16-bit guest-state fields --- *)
let guest_es_selector = def "GUEST_ES_SELECTOR" 0x0800 W16 Guest
let guest_cs_selector = def "GUEST_CS_SELECTOR" 0x0802 W16 Guest
let guest_ss_selector = def "GUEST_SS_SELECTOR" 0x0804 W16 Guest
let guest_ds_selector = def "GUEST_DS_SELECTOR" 0x0806 W16 Guest
let guest_fs_selector = def "GUEST_FS_SELECTOR" 0x0808 W16 Guest
let guest_gs_selector = def "GUEST_GS_SELECTOR" 0x080A W16 Guest
let guest_ldtr_selector = def "GUEST_LDTR_SELECTOR" 0x080C W16 Guest
let guest_tr_selector = def "GUEST_TR_SELECTOR" 0x080E W16 Guest
let guest_interrupt_status = def "GUEST_INTR_STATUS" 0x0810 W16 Guest
let guest_pml_index = def "GUEST_PML_INDEX" 0x0812 W16 Guest

(* --- 16-bit host-state fields --- *)
let host_es_selector = def "HOST_ES_SELECTOR" 0x0C00 W16 Host
let host_cs_selector = def "HOST_CS_SELECTOR" 0x0C02 W16 Host
let host_ss_selector = def "HOST_SS_SELECTOR" 0x0C04 W16 Host
let host_ds_selector = def "HOST_DS_SELECTOR" 0x0C06 W16 Host
let host_fs_selector = def "HOST_FS_SELECTOR" 0x0C08 W16 Host
let host_gs_selector = def "HOST_GS_SELECTOR" 0x0C0A W16 Host
let host_tr_selector = def "HOST_TR_SELECTOR" 0x0C0C W16 Host

(* --- 64-bit control fields --- *)
let io_bitmap_a = def "IO_BITMAP_A" 0x2000 W64 Ctrl
let io_bitmap_b = def "IO_BITMAP_B" 0x2002 W64 Ctrl
let msr_bitmap = def "MSR_BITMAP" 0x2004 W64 Ctrl
let vm_exit_msr_store_addr = def "VM_EXIT_MSR_STORE_ADDR" 0x2006 W64 Ctrl
let vm_exit_msr_load_addr = def "VM_EXIT_MSR_LOAD_ADDR" 0x2008 W64 Ctrl
let vm_entry_msr_load_addr = def "VM_ENTRY_MSR_LOAD_ADDR" 0x200A W64 Ctrl
let executive_vmcs_pointer = def "EXECUTIVE_VMCS_POINTER" 0x200C W64 Ctrl
let pml_address = def "PML_ADDRESS" 0x200E W64 Ctrl
let tsc_offset = def "TSC_OFFSET" 0x2010 W64 Ctrl
let virtual_apic_page_addr = def "VIRTUAL_APIC_PAGE_ADDR" 0x2012 W64 Ctrl
let apic_access_addr = def "APIC_ACCESS_ADDR" 0x2014 W64 Ctrl
let posted_intr_desc_addr = def "POSTED_INTR_DESC_ADDR" 0x2016 W64 Ctrl
let vm_function_control = def "VM_FUNCTION_CONTROL" 0x2018 W64 Ctrl
let ept_pointer = def "EPT_POINTER" 0x201A W64 Ctrl
let eoi_exit_bitmap0 = def "EOI_EXIT_BITMAP0" 0x201C W64 Ctrl
let eoi_exit_bitmap1 = def "EOI_EXIT_BITMAP1" 0x201E W64 Ctrl
let eoi_exit_bitmap2 = def "EOI_EXIT_BITMAP2" 0x2020 W64 Ctrl
let eoi_exit_bitmap3 = def "EOI_EXIT_BITMAP3" 0x2022 W64 Ctrl
let eptp_list_address = def "EPTP_LIST_ADDRESS" 0x2024 W64 Ctrl
let vmread_bitmap = def "VMREAD_BITMAP" 0x2026 W64 Ctrl
let vmwrite_bitmap = def "VMWRITE_BITMAP" 0x2028 W64 Ctrl
let xss_exit_bitmap = def "XSS_EXIT_BITMAP" 0x202C W64 Ctrl
let tsc_multiplier = def "TSC_MULTIPLIER" 0x2032 W64 Ctrl

(* --- 64-bit read-only data fields --- *)
let guest_physical_address = def "GUEST_PHYSICAL_ADDRESS" 0x2400 W64 Exit_info

(* --- 64-bit guest-state fields --- *)
let vmcs_link_pointer = def "VMCS_LINK_POINTER" 0x2800 W64 Guest
let guest_ia32_debugctl = def "GUEST_IA32_DEBUGCTL" 0x2802 W64 Guest
let guest_ia32_pat = def "GUEST_IA32_PAT" 0x2804 W64 Guest
let guest_ia32_efer = def "GUEST_IA32_EFER" 0x2806 W64 Guest
let guest_ia32_perf_global_ctrl =
  def "GUEST_IA32_PERF_GLOBAL_CTRL" 0x2808 W64 Guest
let guest_pdpte0 = def "GUEST_PDPTE0" 0x280A W64 Guest
let guest_pdpte1 = def "GUEST_PDPTE1" 0x280C W64 Guest
let guest_pdpte2 = def "GUEST_PDPTE2" 0x280E W64 Guest
let guest_pdpte3 = def "GUEST_PDPTE3" 0x2810 W64 Guest
let guest_bndcfgs = def "GUEST_BNDCFGS" 0x2812 W64 Guest

(* --- 64-bit host-state fields --- *)
let host_ia32_pat = def "HOST_IA32_PAT" 0x2C00 W64 Host
let host_ia32_efer = def "HOST_IA32_EFER" 0x2C02 W64 Host
let host_ia32_perf_global_ctrl =
  def "HOST_IA32_PERF_GLOBAL_CTRL" 0x2C04 W64 Host

(* --- 32-bit control fields --- *)
let pin_based_vm_exec_control = def "PIN_BASED_VM_EXEC_CONTROL" 0x4000 W32 Ctrl
let cpu_based_vm_exec_control = def "CPU_BASED_VM_EXEC_CONTROL" 0x4002 W32 Ctrl
let exception_bitmap = def "EXCEPTION_BITMAP" 0x4004 W32 Ctrl
let page_fault_error_code_mask =
  def "PAGE_FAULT_ERROR_CODE_MASK" 0x4006 W32 Ctrl
let page_fault_error_code_match =
  def "PAGE_FAULT_ERROR_CODE_MATCH" 0x4008 W32 Ctrl
let cr3_target_count = def "CR3_TARGET_COUNT" 0x400A W32 Ctrl
let vm_exit_controls = def "VM_EXIT_CONTROLS" 0x400C W32 Ctrl
let vm_exit_msr_store_count = def "VM_EXIT_MSR_STORE_COUNT" 0x400E W32 Ctrl
let vm_exit_msr_load_count = def "VM_EXIT_MSR_LOAD_COUNT" 0x4010 W32 Ctrl
let vm_entry_controls = def "VM_ENTRY_CONTROLS" 0x4012 W32 Ctrl
let vm_entry_msr_load_count = def "VM_ENTRY_MSR_LOAD_COUNT" 0x4014 W32 Ctrl
let vm_entry_intr_info = def "VM_ENTRY_INTR_INFO" 0x4016 W32 Ctrl
let vm_entry_exception_error_code =
  def "VM_ENTRY_EXCEPTION_ERROR_CODE" 0x4018 W32 Ctrl
let vm_entry_instruction_len = def "VM_ENTRY_INSTRUCTION_LEN" 0x401A W32 Ctrl
let tpr_threshold = def "TPR_THRESHOLD" 0x401C W32 Ctrl
let secondary_vm_exec_control = def "SECONDARY_VM_EXEC_CONTROL" 0x401E W32 Ctrl
let ple_gap = def "PLE_GAP" 0x4020 W32 Ctrl
let ple_window = def "PLE_WINDOW" 0x4022 W32 Ctrl

(* --- 32-bit read-only data fields --- *)
let vm_instruction_error = def "VM_INSTRUCTION_ERROR" 0x4400 W32 Exit_info
let vm_exit_reason = def "VM_EXIT_REASON" 0x4402 W32 Exit_info
let vm_exit_intr_info = def "VM_EXIT_INTR_INFO" 0x4404 W32 Exit_info
let vm_exit_intr_error_code = def "VM_EXIT_INTR_ERROR_CODE" 0x4406 W32 Exit_info
let idt_vectoring_info = def "IDT_VECTORING_INFO" 0x4408 W32 Exit_info
let idt_vectoring_error_code =
  def "IDT_VECTORING_ERROR_CODE" 0x440A W32 Exit_info
let vm_exit_instruction_len = def "VM_EXIT_INSTRUCTION_LEN" 0x440C W32 Exit_info
let vmx_instruction_info = def "VMX_INSTRUCTION_INFO" 0x440E W32 Exit_info

(* --- 32-bit guest-state fields --- *)
let guest_es_limit = def "GUEST_ES_LIMIT" 0x4800 W32 Guest
let guest_cs_limit = def "GUEST_CS_LIMIT" 0x4802 W32 Guest
let guest_ss_limit = def "GUEST_SS_LIMIT" 0x4804 W32 Guest
let guest_ds_limit = def "GUEST_DS_LIMIT" 0x4806 W32 Guest
let guest_fs_limit = def "GUEST_FS_LIMIT" 0x4808 W32 Guest
let guest_gs_limit = def "GUEST_GS_LIMIT" 0x480A W32 Guest
let guest_ldtr_limit = def "GUEST_LDTR_LIMIT" 0x480C W32 Guest
let guest_tr_limit = def "GUEST_TR_LIMIT" 0x480E W32 Guest
let guest_gdtr_limit = def "GUEST_GDTR_LIMIT" 0x4810 W32 Guest
let guest_idtr_limit = def "GUEST_IDTR_LIMIT" 0x4812 W32 Guest
let guest_es_ar_bytes = def "GUEST_ES_AR_BYTES" 0x4814 W32 Guest
let guest_cs_ar_bytes = def "GUEST_CS_AR_BYTES" 0x4816 W32 Guest
let guest_ss_ar_bytes = def "GUEST_SS_AR_BYTES" 0x4818 W32 Guest
let guest_ds_ar_bytes = def "GUEST_DS_AR_BYTES" 0x481A W32 Guest
let guest_fs_ar_bytes = def "GUEST_FS_AR_BYTES" 0x481C W32 Guest
let guest_gs_ar_bytes = def "GUEST_GS_AR_BYTES" 0x481E W32 Guest
let guest_ldtr_ar_bytes = def "GUEST_LDTR_AR_BYTES" 0x4820 W32 Guest
let guest_tr_ar_bytes = def "GUEST_TR_AR_BYTES" 0x4822 W32 Guest
let guest_interruptibility_info =
  def "GUEST_INTERRUPTIBILITY_INFO" 0x4824 W32 Guest
let guest_activity_state = def "GUEST_ACTIVITY_STATE" 0x4826 W32 Guest
let guest_smbase = def "GUEST_SMBASE" 0x4828 W32 Guest
let guest_sysenter_cs = def "GUEST_SYSENTER_CS" 0x482A W32 Guest
let guest_preemption_timer = def "GUEST_PREEMPTION_TIMER" 0x482E W32 Guest

(* --- 32-bit host-state fields --- *)
let host_sysenter_cs = def "HOST_SYSENTER_CS" 0x4C00 W32 Host

(* --- natural-width control fields --- *)
let cr0_guest_host_mask = def "CR0_GUEST_HOST_MASK" 0x6000 Wnat Ctrl
let cr4_guest_host_mask = def "CR4_GUEST_HOST_MASK" 0x6002 Wnat Ctrl
let cr0_read_shadow = def "CR0_READ_SHADOW" 0x6004 Wnat Ctrl
let cr4_read_shadow = def "CR4_READ_SHADOW" 0x6006 Wnat Ctrl
let cr3_target_value0 = def "CR3_TARGET_VALUE0" 0x6008 Wnat Ctrl
let cr3_target_value1 = def "CR3_TARGET_VALUE1" 0x600A Wnat Ctrl
let cr3_target_value2 = def "CR3_TARGET_VALUE2" 0x600C Wnat Ctrl
let cr3_target_value3 = def "CR3_TARGET_VALUE3" 0x600E Wnat Ctrl

(* --- natural-width read-only data fields --- *)
let exit_qualification = def "EXIT_QUALIFICATION" 0x6400 Wnat Exit_info
let io_rcx = def "IO_RCX" 0x6402 Wnat Exit_info
let io_rsi = def "IO_RSI" 0x6404 Wnat Exit_info
let io_rdi = def "IO_RDI" 0x6406 Wnat Exit_info
let io_rip = def "IO_RIP" 0x6408 Wnat Exit_info
let guest_linear_address = def "GUEST_LINEAR_ADDRESS" 0x640A Wnat Exit_info

(* --- natural-width guest-state fields --- *)
let guest_cr0 = def "GUEST_CR0" 0x6800 Wnat Guest
let guest_cr3 = def "GUEST_CR3" 0x6802 Wnat Guest
let guest_cr4 = def "GUEST_CR4" 0x6804 Wnat Guest
let guest_es_base = def "GUEST_ES_BASE" 0x6806 Wnat Guest
let guest_cs_base = def "GUEST_CS_BASE" 0x6808 Wnat Guest
let guest_ss_base = def "GUEST_SS_BASE" 0x680A Wnat Guest
let guest_ds_base = def "GUEST_DS_BASE" 0x680C Wnat Guest
let guest_fs_base = def "GUEST_FS_BASE" 0x680E Wnat Guest
let guest_gs_base = def "GUEST_GS_BASE" 0x6810 Wnat Guest
let guest_ldtr_base = def "GUEST_LDTR_BASE" 0x6812 Wnat Guest
let guest_tr_base = def "GUEST_TR_BASE" 0x6814 Wnat Guest
let guest_gdtr_base = def "GUEST_GDTR_BASE" 0x6816 Wnat Guest
let guest_idtr_base = def "GUEST_IDTR_BASE" 0x6818 Wnat Guest
let guest_dr7 = def "GUEST_DR7" 0x681A Wnat Guest
let guest_rsp = def "GUEST_RSP" 0x681C Wnat Guest
let guest_rip = def "GUEST_RIP" 0x681E Wnat Guest
let guest_rflags = def "GUEST_RFLAGS" 0x6820 Wnat Guest
let guest_pending_dbg_exceptions =
  def "GUEST_PENDING_DBG_EXCEPTIONS" 0x6822 Wnat Guest
let guest_sysenter_esp = def "GUEST_SYSENTER_ESP" 0x6824 Wnat Guest
let guest_sysenter_eip = def "GUEST_SYSENTER_EIP" 0x6826 Wnat Guest

(* --- natural-width host-state fields --- *)
let host_cr0 = def "HOST_CR0" 0x6C00 Wnat Host
let host_cr3 = def "HOST_CR3" 0x6C02 Wnat Host
let host_cr4 = def "HOST_CR4" 0x6C04 Wnat Host
let host_fs_base = def "HOST_FS_BASE" 0x6C06 Wnat Host
let host_gs_base = def "HOST_GS_BASE" 0x6C08 Wnat Host
let host_tr_base = def "HOST_TR_BASE" 0x6C0A Wnat Host
let host_gdtr_base = def "HOST_GDTR_BASE" 0x6C0C Wnat Host
let host_idtr_base = def "HOST_IDTR_BASE" 0x6C0E Wnat Host
let host_sysenter_esp = def "HOST_SYSENTER_ESP" 0x6C10 Wnat Host
let host_sysenter_eip = def "HOST_SYSENTER_EIP" 0x6C12 Wnat Host
let host_rsp = def "HOST_RSP" 0x6C14 Wnat Host
let host_rip = def "HOST_RIP" 0x6C16 Wnat Host

(* Registration is over; freeze the table. *)
let table = Array.of_list (List.rev !registry)

let () = frozen := true

let is_frozen () = !frozen

let count = Array.length table

let compact f = f

let of_compact i = if i >= 0 && i < count then Some i else None

let info f = table.(f)

let encoding16 f = (info f).f_enc

let name f = (info f).f_name

let width f = (info f).f_width

let area f = (info f).f_area

let readonly f = area f = Exit_info

let by_encoding : (int, t) Hashtbl.t =
  let h = Hashtbl.create 256 in
  Array.iteri (fun i inf -> Hashtbl.replace h inf.f_enc i) table;
  h

let of_encoding16 enc = Hashtbl.find_opt by_encoding enc

let exists enc = Hashtbl.mem by_encoding enc

let width_bytes f =
  match width f with W16 -> 2 | W32 -> 4 | W64 | Wnat -> 8

let truncate f v = Iris_util.Bits.truncate_width (width_bytes f) v

let all = Array.init count (fun i -> i)

let in_area a =
  Array.to_list all |> List.filter (fun f -> area f = a)

let pp fmt f = Format.pp_print_string fmt (name f)

(* Hoisted so [segment_fields] returns a preallocated tuple: it runs
   inside the state save/load of every exit and entry transition. *)
let cs_fields = (guest_cs_selector, guest_cs_base, guest_cs_limit, guest_cs_ar_bytes)
let ds_fields = (guest_ds_selector, guest_ds_base, guest_ds_limit, guest_ds_ar_bytes)
let es_fields = (guest_es_selector, guest_es_base, guest_es_limit, guest_es_ar_bytes)
let fs_fields = (guest_fs_selector, guest_fs_base, guest_fs_limit, guest_fs_ar_bytes)
let gs_fields = (guest_gs_selector, guest_gs_base, guest_gs_limit, guest_gs_ar_bytes)
let ss_fields = (guest_ss_selector, guest_ss_base, guest_ss_limit, guest_ss_ar_bytes)
let tr_fields = (guest_tr_selector, guest_tr_base, guest_tr_limit, guest_tr_ar_bytes)
let ldtr_fields =
  (guest_ldtr_selector, guest_ldtr_base, guest_ldtr_limit, guest_ldtr_ar_bytes)

let segment_fields seg =
  let open Iris_x86.Segment in
  match seg with
  | Cs -> cs_fields
  | Ds -> ds_fields
  | Es -> es_fields
  | Fs -> fs_fields
  | Gs -> gs_fields
  | Ss -> ss_fields
  | Tr -> tr_fields
  | Ldtr -> ldtr_fields

(* Silence unused warnings for table-only fields that have no direct
   consumer yet but must exist for encoding completeness. *)
let _ = posted_intr_nv
let _ = eptp_index
let _ = guest_pml_index
let _ = executive_vmcs_pointer
let _ = pml_address
let _ = posted_intr_desc_addr
let _ = vm_function_control
let _ = eoi_exit_bitmap0
let _ = eoi_exit_bitmap1
let _ = eoi_exit_bitmap2
let _ = eoi_exit_bitmap3
let _ = eptp_list_address
let _ = vmread_bitmap
let _ = vmwrite_bitmap
let _ = xss_exit_bitmap
let _ = tsc_multiplier
let _ = guest_ia32_perf_global_ctrl
let _ = guest_bndcfgs
let _ = host_ia32_perf_global_ctrl
let _ = ple_gap
let _ = ple_window
let _ = guest_smbase
