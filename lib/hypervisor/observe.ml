module R = Iris_vtx.Exit_reason
module T = Iris_telemetry

let max_code =
  List.fold_left (fun acc r -> max acc (R.code r)) 0 R.all

let reason_labels =
  Array.init (max_code + 1) (fun code ->
      match R.of_code code with
      | Some r -> R.short_name r
      | None -> Printf.sprintf "RSVD%d" code)

let attach hub ctx =
  let tid = T.Tracer.alloc_tid hub.T.Hub.tracer in
  let probe = T.Probe.create ~tid ~labels:reason_labels hub in
  ctx.Ctx.hooks.Hooks.probe <- Some probe;
  Iris_vtx.Engine.set_exit_counters ctx.Ctx.dom.Domain.engine
    (Some
       (T.Registry.counter_vec hub.T.Hub.registry "engine.exits"
          ~labels:reason_labels));
  probe

let detach ctx =
  ctx.Ctx.hooks.Hooks.probe <- None;
  Iris_vtx.Engine.set_exit_counters ctx.Ctx.dom.Domain.engine None

let probe ctx = ctx.Ctx.hooks.Hooks.probe
