(** IRIS instrumentation points inside the hypervisor.

    The paper implements IRIS as compile-time callbacks wrapped around
    Xen's [vmread()]/[vmwrite()] functions and the start of the VM
    exit handler (§V-A/§V-B).  This module is that patch surface: the
    exit dispatcher and the {!Access} wrappers invoke whatever
    callbacks are installed.

    Two kinds of consumers exist:
    - the *recorder* observes ([on_vmread], [on_vmwrite],
      [on_exit_start], [on_exit_end]);
    - the *replayer* additionally installs [vmread_filter] to replace
      the return value of VMREADs on read-only fields with the
      recorded seed values.

    Callbacks run with a per-callback cycle surcharge so that enabling
    recording shows up as the small temporal overhead of Fig. 10. *)

type t = {
  mutable vmread_filter : (Iris_vmcs.Field.t -> int64 -> int64) option;
      (** replace the value a VMREAD returns (replay shim) *)
  mutable on_vmread : (Iris_vmcs.Field.t -> int64 -> unit) option;
  mutable on_vmwrite : (Iris_vmcs.Field.t -> int64 -> unit) option;
  mutable on_exit_start : (unit -> unit) option;
  mutable on_exit_end : (unit -> unit) option;
  mutable callback_cycles : int;
      (** cycles charged per callback invocation (recording
          overhead) *)
  mutable probe : Iris_telemetry.Probe.t option;
      (** telemetry instrument pack consulted by the exit dispatcher
          and the {!Access} wrappers; [None] (the default) keeps the
          hot path at a single option check *)
}

val create : unit -> t
(** No callbacks installed. *)

val clear : t -> unit
(** Removes the record/replay callbacks; the telemetry [probe] slot is
    left alone (observability outlives a recording session). *)

val any_installed : t -> bool

val default_callback_cycles : int

(** {2 Hook invocation}

    All call sites fire hooks through these helpers so the overhead
    accounting is centralised: [callback_cycles] is charged through
    [charge] exactly once per installed callback actually invoked, and
    never for an empty slot. *)

val fire_exit_start : t -> charge:(int -> unit) -> unit

val fire_exit_end : t -> charge:(int -> unit) -> unit

val fire_vmread_filter :
  t -> charge:(int -> unit) -> Iris_vmcs.Field.t -> int64 -> int64
(** Returns the (possibly replaced) VMREAD value; the raw value when
    no filter is installed. *)

val fire_vmread :
  t -> charge:(int -> unit) -> Iris_vmcs.Field.t -> int64 -> unit

val fire_vmwrite :
  t -> charge:(int -> unit) -> Iris_vmcs.Field.t -> int64 -> unit
