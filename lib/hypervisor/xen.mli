(** Top level: domain construction and the exit/entry run loop.

    [construct] mirrors Xen's [construct_vmcs]: VMXON, VMCLEAR,
    VMPTRLD, then programming the execution controls the rest of the
    model relies on (external-interrupt exiting, HLT/RDTSC exiting,
    unconditional I/O exiting, EPT, unrestricted guest, CR0/CR4 masks
    and shadows, host state).  A dummy domain additionally arms the
    VMX-preemption timer at zero — the IRIS replay trigger (§V-B).

    [run] drives a guest program: engine → dispatcher → (block/wake)
    → VM entry, until the program ends, an exit budget is consumed,
    the domain crashes, or the hypervisor panics. *)

val construct :
  ?dummy:bool -> ?id:int -> ?mem_mib:int -> cov:Iris_coverage.Cov.t ->
  hooks:Hooks.t -> name:string -> unit -> Ctx.t
(** Build a domain ready to launch.  [mem_mib] defaults to 1024 (the
    paper's DomU size); the dummy VM is a 1 GiB DomU too.  [id]
    defaults to the next unused domain id, drawn from an atomic
    counter so concurrent construction from orchestrator worker
    domains is safe. *)

type stop_reason =
  | Completed      (** instruction stream exhausted *)
  | Crashed of string
  | Budget         (** [max_exits] reached *)

type run_result = {
  stop : stop_reason;
  exits : int;          (** exits taken during this run *)
  cycles : int64;       (** cycles consumed during this run *)
}

val run :
  ?max_exits:int ->
  ?on_exit:(Iris_vtx.Engine.event -> unit) ->
  Ctx.t -> fetch:(unit -> Iris_x86.Insn.t option) -> run_result
(** May raise {!Ctx.Hypervisor_panic}.  [on_exit] observes each exit
    event after its handler ran (used by workload characterisation,
    not by IRIS, which uses {!Hooks}). *)

val enter : Ctx.t -> (unit, string) result
(** One VM entry (VMLAUNCH or VMRESUME as appropriate) including the
    engine's entry completion.  [Error] means the entry failed and the
    domain was crashed; a VMfail panics. *)
