(** Hypervisor execution context.

    One value of this type is "the hypervisor" for one domain: the
    domain itself, the coverage store (the gcov build), the IRIS hook
    set (the patch points), and a log ring the fuzzer's failure triage
    greps, as the paper does with Xen's console log. *)

exception Hypervisor_panic of string
(** A BUG()/panic path was reached: the whole hypervisor (and every
    VM on it) is gone.  The fuzzer triages this as a hypervisor
    crash. *)

type coverage_backend =
  | Gcov
      (** compile-time instrumentation: every probe increments a
          counter in the coverage bitmap (the paper's baseline) *)
  | Ipt of Iris_coverage.Ipt.t
      (** processor-trace-style backend (§IX): probes stream cheap
          packets; coverage is decoded offline *)

type t = {
  dom : Domain.t;
  cov : Iris_coverage.Cov.t;
  hooks : Hooks.t;
  log : string list ref;  (** newest first *)
  mutable backend : coverage_backend;
  charge : int -> unit;
      (** advance this domain's virtual clock by [n] cycles; built
          once at {!create} so the per-exit hook calls share a single
          closure instead of allocating one each *)
}

val create : dom:Domain.t -> cov:Iris_coverage.Cov.t -> hooks:Hooks.t -> t

val gcov_probe_cycles : int
(** Cost of one gcov counter update in the instrumented build. *)

val log : t -> string -> unit
val logf : t -> ('a, unit, string, unit) format4 -> 'a
val log_lines : t -> string list
(** Oldest first. *)

val domain_crash : t -> string -> unit
(** Kill the domain (logged; idempotent). *)

val panic : t -> string -> 'a
(** Log and raise {!Hypervisor_panic}. *)

val hit : t -> Iris_coverage.Component.t -> int -> unit
(** Coverage probe; handlers call this with [__LINE__]. *)

val clock : t -> Iris_vtx.Clock.t
val vcpu : t -> Iris_vtx.Vcpu.t
val regs : t -> Iris_x86.Gpr.file
