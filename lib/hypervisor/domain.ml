module Gmem = Iris_memory.Gmem
module Ept = Iris_memory.Ept

type t = {
  id : int;
  name : string;
  dummy : bool;
  vcpu : Iris_vtx.Vcpu.t;
  mem : Gmem.t;
  ept : Ept.t;
  bus : Iris_devices.Port_bus.t;
  pic : Iris_devices.Pic.t;
  pit : Iris_devices.Pit.t;
  uart : Iris_devices.Uart.t;
  rtc : Iris_devices.Rtc.t;
  pci : Iris_devices.Pci.t;
  vlapic : Vlapic.t;
  vpt : Vpt.t;
  engine : Iris_vtx.Engine.t;
  mutable crashed : string option;
  mutable guest_mode : Iris_x86.Cpu_mode.t;
  mutable pending_insn : Iris_x86.Insn.t option;
  mutable blocked : bool;
  bar_regs : int64 array;
  stats : stats;
}

and stats = {
  mutable full_reverts : int;
  mutable cow_reverts : int;
  mutable checkpoints : int;
  mutable pages_restored : int;
  mutable ept_restored : int;
  mutable vmcs_fields_restored : int;
}

let mmio_bar_base = 0xFEB00000L

let mmio_bar_size = 0x10000L

let create ?(dummy = false) ~cov ~id ~name ~mem_mib () =
  let vcpu = Iris_vtx.Vcpu.create () in
  let mem = Gmem.create ~size_mib:mem_mib in
  let ept = Ept.create () in
  (* Populate RAM mappings; leave the APIC page and the device BAR as
     holes so accesses fault for emulation. *)
  Ept.map ept ~gpa:0L ~len:(Gmem.size_bytes mem) Ept.perm_rwx;
  Ept.unmap ept ~gpa:Vlapic.mmio_base ~len:Vlapic.mmio_size;
  Ept.unmap ept ~gpa:mmio_bar_base ~len:mmio_bar_size;
  let bus = Iris_devices.Port_bus.create () in
  let pic = Iris_devices.Pic.create () in
  let pit = Iris_devices.Pit.create () in
  let uart = Iris_devices.Uart.create () in
  let rtc = Iris_devices.Rtc.create () in
  let pci = Iris_devices.Pci.create () in
  Iris_devices.Pic.attach pic bus;
  Iris_devices.Pit.attach pit bus;
  Iris_devices.Uart.attach uart bus;
  Iris_devices.Rtc.attach rtc bus;
  Iris_devices.Pci.attach pci bus;
  let vlapic = Vlapic.create ~cov in
  let vpt = Vpt.create ~cov in
  let engine = Iris_vtx.Engine.create ~vcpu ~mem ~ept in
  { id;
    name;
    dummy;
    vcpu;
    mem;
    ept;
    bus;
    pic;
    pit;
    uart;
    rtc;
    pci;
    vlapic;
    vpt;
    engine;
    crashed = None;
    guest_mode = Iris_x86.Cpu_mode.Mode1;
    pending_insn = None;
    blocked = false;
    bar_regs = Array.make 16 0L;
    stats =
      { full_reverts = 0;
        cow_reverts = 0;
        checkpoints = 0;
        pages_restored = 0;
        ept_restored = 0;
        vmcs_fields_restored = 0 } }

let snapshot_stats t =
  { t.stats with full_reverts = t.stats.full_reverts }

let crash t reason =
  match t.crashed with
  | Some _ -> ()
  | None -> t.crashed <- Some reason

let crashed t = t.crashed <> None

type snapshot = {
  s_vcpu : Iris_vtx.Vcpu.t;
  s_mem : Gmem.t;
  s_ept : Ept.t;
  s_pic : Iris_devices.Pic.t;
  s_pit : Iris_devices.Pit.t;
  s_uart : Iris_devices.Uart.t;
  s_rtc : Iris_devices.Rtc.t;
  s_pci : Iris_devices.Pci.t;
  s_vlapic : Vlapic.t;
  s_vpt : Vpt.t;
  s_crashed : string option;
  s_guest_mode : Iris_x86.Cpu_mode.t;
  s_blocked : bool;
  s_bar_regs : int64 array;
}

let snapshot t =
  { s_vcpu = Iris_vtx.Vcpu.snapshot t.vcpu;
    s_mem = Gmem.copy t.mem;
    s_ept = Ept.copy t.ept;
    s_pic = Iris_devices.Pic.copy t.pic;
    s_pit = Iris_devices.Pit.copy t.pit;
    s_uart = Iris_devices.Uart.copy t.uart;
    s_rtc = Iris_devices.Rtc.copy t.rtc;
    s_pci = Iris_devices.Pci.copy t.pci;
    s_vlapic = Vlapic.copy t.vlapic;
    s_vpt = Vpt.copy t.vpt;
    s_crashed = t.crashed;
    s_guest_mode = t.guest_mode;
    s_blocked = t.blocked;
    s_bar_regs = Array.copy t.bar_regs }

(* The bus handlers and the engine close over the device/memory
   records, so restoring mutates the existing records in place
   (transplant) rather than swapping them. *)
let revert t s =
  t.stats.full_reverts <- t.stats.full_reverts + 1;
  Iris_vtx.Vcpu.restore t.vcpu ~from:s.s_vcpu;
  Gmem.transplant ~into:t.mem ~from:s.s_mem;
  Ept.transplant ~into:t.ept ~from:s.s_ept;
  Iris_devices.Pic.transplant ~into:t.pic ~from:s.s_pic;
  Iris_devices.Pit.transplant ~into:t.pit ~from:s.s_pit;
  Iris_devices.Uart.transplant ~into:t.uart ~from:s.s_uart;
  Iris_devices.Rtc.transplant ~into:t.rtc ~from:s.s_rtc;
  Iris_devices.Pci.transplant ~into:t.pci ~from:s.s_pci;
  Vlapic.restore t.vlapic ~from:s.s_vlapic;
  Vpt.restore t.vpt ~from:s.s_vpt;
  t.crashed <- s.s_crashed;
  t.guest_mode <- s.s_guest_mode;
  t.pending_insn <- None;
  t.blocked <- s.s_blocked;
  Array.blit s.s_bar_regs 0 t.bar_regs 0 (Array.length t.bar_regs)

(* --- incremental (copy-on-write) checkpoints ---

   Guest memory, the EPT and the VMCS — the bulk of a snapshot — are
   checkpointed through their write journals, so a rewind touches only
   what the epoch dirtied.  The platform devices and vCPU scalars are
   a few hundred fixed bytes and are captured eagerly, exactly as the
   full snapshot does. *)

type checkpoint = {
  k_vcpu : Iris_vtx.Vcpu.checkpoint;
  k_mem : Gmem.checkpoint;
  k_ept : Ept.checkpoint;
  k_pic : Iris_devices.Pic.t;
  k_pit : Iris_devices.Pit.t;
  k_uart : Iris_devices.Uart.t;
  k_rtc : Iris_devices.Rtc.t;
  k_pci : Iris_devices.Pci.t;
  k_vlapic : Vlapic.t;
  k_vpt : Vpt.t;
  k_crashed : string option;
  k_guest_mode : Iris_x86.Cpu_mode.t;
  k_blocked : bool;
  k_bar_regs : int64 array;
}

let checkpoint t =
  t.stats.checkpoints <- t.stats.checkpoints + 1;
  { k_vcpu = Iris_vtx.Vcpu.checkpoint t.vcpu;
    k_mem = Gmem.checkpoint t.mem;
    k_ept = Ept.checkpoint t.ept;
    k_pic = Iris_devices.Pic.copy t.pic;
    k_pit = Iris_devices.Pit.copy t.pit;
    k_uart = Iris_devices.Uart.copy t.uart;
    k_rtc = Iris_devices.Rtc.copy t.rtc;
    k_pci = Iris_devices.Pci.copy t.pci;
    k_vlapic = Vlapic.copy t.vlapic;
    k_vpt = Vpt.copy t.vpt;
    k_crashed = t.crashed;
    k_guest_mode = t.guest_mode;
    k_blocked = t.blocked;
    k_bar_regs = Array.copy t.bar_regs }

type revert_stats = {
  rs_pages : int;
  rs_ept_entries : int;
  rs_vmcs_fields : int;
}

let rewind t k =
  let rs_vmcs_fields = Iris_vtx.Vcpu.rewind t.vcpu k.k_vcpu in
  let rs_pages = Gmem.rewind t.mem k.k_mem in
  let rs_ept_entries = Ept.rewind t.ept k.k_ept in
  Iris_devices.Pic.transplant ~into:t.pic ~from:k.k_pic;
  Iris_devices.Pit.transplant ~into:t.pit ~from:k.k_pit;
  Iris_devices.Uart.transplant ~into:t.uart ~from:k.k_uart;
  Iris_devices.Rtc.transplant ~into:t.rtc ~from:k.k_rtc;
  Iris_devices.Pci.transplant ~into:t.pci ~from:k.k_pci;
  Vlapic.restore t.vlapic ~from:k.k_vlapic;
  Vpt.restore t.vpt ~from:k.k_vpt;
  t.crashed <- k.k_crashed;
  t.guest_mode <- k.k_guest_mode;
  t.pending_insn <- None;
  t.blocked <- k.k_blocked;
  Array.blit k.k_bar_regs 0 t.bar_regs 0 (Array.length t.bar_regs);
  t.stats.cow_reverts <- t.stats.cow_reverts + 1;
  t.stats.pages_restored <- t.stats.pages_restored + rs_pages;
  t.stats.ept_restored <- t.stats.ept_restored + rs_ept_entries;
  t.stats.vmcs_fields_restored <-
    t.stats.vmcs_fields_restored + rs_vmcs_fields;
  { rs_pages; rs_ept_entries; rs_vmcs_fields }

let release t k =
  Iris_vtx.Vcpu.commit t.vcpu k.k_vcpu;
  Gmem.commit t.mem k.k_mem;
  Ept.commit t.ept k.k_ept

(* --- modeled restore footprint ---

   Deterministic cost model for the bench's revert-throughput gate:
   bytes a restore path must touch.  The fixed part (vCPU scalars,
   MSRs, segments, devices) is common to both paths; the variable part
   is the whole snapshot for a full restore versus only the journaled
   state for a COW rewind. *)

let fixed_restore_bytes = 2048

let snapshot_bytes s =
  fixed_restore_bytes
  + (Gmem.allocated_pages s.s_mem * Gmem.page_size)
  + (Ept.override_count s.s_ept * 16)
  + (Iris_vmcs.Field.count * 8)

let rewind_bytes rs =
  fixed_restore_bytes
  + (rs.rs_pages * Gmem.page_size)
  + (rs.rs_ept_entries * 16)
  + (rs.rs_vmcs_fields * 8)
