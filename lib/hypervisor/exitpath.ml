module F = Iris_vmcs.Field
module Comp = Iris_coverage.Component
module R = Iris_vtx.Exit_reason

let hit ctx line = Ctx.hit ctx Comp.Vmx_c line

let charge ctx n = ctx.Ctx.charge n

let dispatch_reason ctx reason =
  match reason with
  | R.Exception_or_nmi -> H_intr.handle_exception ctx
  | R.External_interrupt -> H_intr.handle_external_interrupt ctx
  | R.Triple_fault -> H_simple.handle_triple_fault ctx
  | R.Interrupt_window -> H_intr.handle_interrupt_window ctx
  | R.Cpuid -> H_cpuid.handle ctx
  | R.Hlt -> H_simple.handle_hlt ctx
  | R.Rdtsc -> H_simple.handle_rdtsc ctx ~rdtscp:false
  | R.Rdtscp -> H_simple.handle_rdtsc ctx ~rdtscp:true
  | R.Vmcall -> H_simple.handle_vmcall ctx
  | R.Cr_access -> H_cr.handle ctx
  | R.Io_instruction -> H_io.handle ctx
  | R.Rdmsr -> H_msr.handle_rdmsr ctx
  | R.Wrmsr -> H_msr.handle_wrmsr ctx
  | R.Ept_violation -> H_ept.handle ctx
  | R.Preemption_timer -> H_simple.handle_preemption_timer ctx
  | R.Pause -> H_simple.handle_pause ctx
  | R.Wbinvd -> H_simple.handle_wbinvd ctx
  | R.Xsetbv -> H_simple.handle_xsetbv ctx
  | R.Invlpg -> H_simple.handle_invlpg ctx
  | R.Invd ->
      hit ctx __LINE__;
      Common.advance_rip ctx
  | R.Vmclear | R.Vmlaunch | R.Vmptrld | R.Vmptrst | R.Vmread | R.Vmresume
  | R.Vmwrite | R.Vmxoff | R.Vmxon | R.Invept | R.Invvpid | R.Vmfunc ->
      H_simple.handle_vmx_insn ctx
  | R.Mov_dr ->
      hit ctx __LINE__;
      Common.advance_rip ctx
  | R.Ept_misconfiguration ->
      (* An EPT misconfiguration is a hypervisor bug by definition. *)
      hit ctx __LINE__;
      Ctx.panic ctx "EPT misconfiguration"
  | R.Entry_failure_machine_check ->
      hit ctx __LINE__;
      Ctx.panic ctx "VM entry failed due to machine check"
  | R.Entry_failure_guest_state | R.Entry_failure_msr_loading ->
      hit ctx __LINE__;
      Ctx.domain_crash ctx "VM entry failure reported as exit reason"
  | R.Task_switch | R.Apic_access | R.Apic_write | R.Virtualized_eoi
  | R.Tpr_below_threshold ->
      hit ctx __LINE__;
      Ctx.hit ctx Comp.Vlapic_c __LINE__;
      Common.advance_rip ctx
  | R.Gdtr_idtr_access | R.Ldtr_tr_access ->
      hit ctx __LINE__;
      Common.advance_rip ctx
  | R.Monitor_trap_flag ->
      hit ctx __LINE__;
      ()
  | R.Init_signal | R.Sipi | R.Io_smi | R.Other_smi | R.Getsec | R.Rsm
  | R.Mwait | R.Monitor | R.Nmi_window | R.Rdpmc | R.Rdrand | R.Rdseed
  | R.Invpcid | R.Encls | R.Pml_full | R.Xsaves | R.Xrstors ->
      hit ctx __LINE__;
      Ctx.logf ctx "(XEN) d%d Bad vmexit (reason %d)" ctx.Ctx.dom.Domain.id
        (R.code reason);
      Ctx.domain_crash ctx
        (Printf.sprintf "unexpected exit reason %d (%s)" (R.code reason)
           (R.name reason))

let handle ctx =
  let probe = ctx.Ctx.hooks.Hooks.probe in
  (match probe with
  | None -> ()
  | Some p ->
      Iris_telemetry.Probe.exit_begin p
        ~now:(Iris_vtx.Clock.now (Ctx.clock ctx)));
  (* The per-exit telemetry label: what the reason field resolves to,
     or the preemption-timer placeholder when it never resolves. *)
  let probed_reason = ref (R.code R.Preemption_timer) in
  Hooks.fire_exit_start ctx.Ctx.hooks ~charge:ctx.Ctx.charge;
  charge ctx Iris_vtx.Cost.dispatch_base;
  hit ctx __LINE__;
  (* Opportunistic platform-timer processing, as Xen does on its exit
     path.  The schedule of these ticks relative to exits is the
     asynchronous noise the paper filters in Fig. 7. *)
  let now = Iris_vtx.Clock.now (Ctx.clock ctx) in
  let fired = Vpt.process ctx.Ctx.dom.Domain.vpt ~now in
  List.iter
    (fun (_, vector) ->
      Ctx.hit ctx Comp.Vpt_c __LINE__;
      Vlapic.accept_irq ctx.Ctx.dom.Domain.vlapic ~vector)
    fired;
  (* Xen's vmx_vmexit_handler reads the vectoring state of every exit
     before dispatching: an exit taken *during* event delivery must
     re-inject the interrupted event. *)
  let idt_vec = Access.vmread ctx F.idt_vectoring_info in
  if Iris_vmcs.Controls.intr_info_is_valid idt_vec then begin
    hit ctx __LINE__;
    let err =
      if Iris_vmcs.Controls.intr_info_has_error_code idt_vec then begin
        hit ctx __LINE__;
        Access.vmread ctx F.idt_vectoring_error_code
      end
      else 0L
    in
    Access.vmwrite ctx F.vm_entry_intr_info idt_vec;
    if Iris_vmcs.Controls.intr_info_has_error_code idt_vec then
      Access.vmwrite ctx F.vm_entry_exception_error_code err
  end;
  let reason_field = Access.vmread ctx F.vm_exit_reason in
  (if Iris_util.Bits.test reason_field 31 then begin
     (* VM-entry failure echoed in the exit reason. *)
     hit ctx __LINE__;
     Ctx.domain_crash ctx
       (Printf.sprintf "VM entry failure (reason field 0x%Lx)" reason_field)
   end
   else
     match R.of_reason_field reason_field with
     | None ->
         hit ctx __LINE__;
         Ctx.logf ctx "(XEN) d%d Bad vmexit (reason field 0x%Lx)"
           ctx.Ctx.dom.Domain.id reason_field;
         Ctx.domain_crash ctx
           (Printf.sprintf "unknown exit reason field 0x%Lx" reason_field)
     | Some reason ->
         hit ctx __LINE__;
         probed_reason := R.code reason;
         (match probe with
         | None -> ()
         | Some p ->
             Iris_telemetry.Probe.handler_begin p
               ~now:(Iris_vtx.Clock.now (Ctx.clock ctx)));
         dispatch_reason ctx reason;
         (match probe with
         | None -> ()
         | Some p ->
             Iris_telemetry.Probe.handler_end p
               ~now:(Iris_vtx.Clock.now (Ctx.clock ctx))
               ~name:(R.name reason)));
  if not (Domain.crashed ctx.Ctx.dom) then H_intr.assist ctx;
  Hooks.fire_exit_end ctx.Ctx.hooks ~charge:ctx.Ctx.charge;
  match probe with
  | None -> ()
  | Some p ->
      Iris_telemetry.Probe.exit_end p
        ~now:(Iris_vtx.Clock.now (Ctx.clock ctx))
        ~reason:!probed_reason
