type t = {
  mutable vmread_filter : (Iris_vmcs.Field.t -> int64 -> int64) option;
  mutable on_vmread : (Iris_vmcs.Field.t -> int64 -> unit) option;
  mutable on_vmwrite : (Iris_vmcs.Field.t -> int64 -> unit) option;
  mutable on_exit_start : (unit -> unit) option;
  mutable on_exit_end : (unit -> unit) option;
  mutable callback_cycles : int;
  mutable probe : Iris_telemetry.Probe.t option;
}

let default_callback_cycles = 25

let create () =
  { vmread_filter = None;
    on_vmread = None;
    on_vmwrite = None;
    on_exit_start = None;
    on_exit_end = None;
    callback_cycles = default_callback_cycles;
    probe = None }

let clear t =
  t.vmread_filter <- None;
  t.on_vmread <- None;
  t.on_vmwrite <- None;
  t.on_exit_start <- None;
  t.on_exit_end <- None

let any_installed t =
  t.vmread_filter <> None || t.on_vmread <> None || t.on_vmwrite <> None
  || t.on_exit_start <> None || t.on_exit_end <> None

(* Every hook invocation goes through one of the [fire_*] helpers so
   the overhead accounting lives in exactly one place: the surcharge
   is paid once per *installed* callback actually invoked, and an
   empty slot charges nothing.  The regression tests pin both
   properties (Fig. 10's overhead is the sum of these charges). *)

let fire_exit_start t ~charge =
  match t.on_exit_start with
  | None -> ()
  | Some cb ->
      charge t.callback_cycles;
      cb ()

let fire_exit_end t ~charge =
  match t.on_exit_end with
  | None -> ()
  | Some cb ->
      charge t.callback_cycles;
      cb ()

let fire_vmread_filter t ~charge field raw =
  match t.vmread_filter with
  | None -> raw
  | Some filter ->
      charge t.callback_cycles;
      filter field raw

let fire_vmread t ~charge field value =
  match t.on_vmread with
  | None -> ()
  | Some cb ->
      charge t.callback_cycles;
      cb field value

let fire_vmwrite t ~charge field value =
  match t.on_vmwrite with
  | None -> ()
  | Some cb ->
      charge t.callback_cycles;
      cb field value
