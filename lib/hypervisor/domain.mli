(** An HVM domain: one guest VM with its vCPU, memory, EPT and
    emulated platform devices.

    Mirrors the paper's setup: each DomU has a single vCPU pinned 1:1
    to a pCPU, 1 GiB RAM, and the standard PC platform (PIC, PIT,
    UART, RTC, PCI, local APIC).  A *dummy* domain — the replay
    target — is the same structure created with [~dummy:true]: empty
    memory, no devices initialised by a BIOS, preemption timer armed
    at zero. *)

type t = {
  id : int;
  name : string;
  dummy : bool;
  vcpu : Iris_vtx.Vcpu.t;
  mem : Iris_memory.Gmem.t;
  ept : Iris_memory.Ept.t;
  bus : Iris_devices.Port_bus.t;
  pic : Iris_devices.Pic.t;
  pit : Iris_devices.Pit.t;
  uart : Iris_devices.Uart.t;
  rtc : Iris_devices.Rtc.t;
  pci : Iris_devices.Pci.t;
  vlapic : Vlapic.t;
  vpt : Vpt.t;
  engine : Iris_vtx.Engine.t;
  mutable crashed : string option;
      (** set when the domain has been killed (VM crash) *)
  mutable guest_mode : Iris_x86.Cpu_mode.t;
      (** the hypervisor's own abstraction of the guest CPU operating
          mode, updated during CR-access handling (paper §III) *)
  mutable pending_insn : Iris_x86.Insn.t option;
      (** instruction under emulation for the current exit; [None]
          when replaying (no guest instruction stream exists) *)
  mutable blocked : bool;
      (** vCPU blocked in HLT, waiting for an event *)
  bar_regs : int64 array;
      (** register file of the synthetic PCI device behind
          {!mmio_bar_base} (16 dwords) *)
  stats : stats;  (** snapshot/revert accounting (COW effectiveness) *)
}

and stats = {
  mutable full_reverts : int;   (** deep-copy [revert] calls *)
  mutable cow_reverts : int;    (** journal-based [rewind] calls *)
  mutable checkpoints : int;    (** [checkpoint] captures *)
  mutable pages_restored : int; (** guest pages undone across rewinds *)
  mutable ept_restored : int;   (** EPT override entries undone *)
  mutable vmcs_fields_restored : int;  (** VMCS fields undone *)
}

val create :
  ?dummy:bool -> cov:Iris_coverage.Cov.t -> id:int -> name:string ->
  mem_mib:int -> unit -> t

val crash : t -> string -> unit
(** Mark the domain crashed (idempotent; first reason wins). *)

val crashed : t -> bool

val mmio_bar_base : int64
(** Guest-physical base of the synthetic PCI device BAR (an MMIO
    region that EPT-faults into the device emulator). *)

val mmio_bar_size : int64

type snapshot

val snapshot : t -> snapshot
(** Capture the complete domain state (vCPU, VMCS, memory, EPT,
    devices, vlapic, vpt, flags). *)

val revert : t -> snapshot -> unit

val snapshot_stats : t -> stats
(** A copy of the domain's snapshot/revert counters. *)

(** {2 Incremental (copy-on-write) checkpoints}

    Guest memory, the EPT and the VMCS — the bulk of a snapshot — are
    checkpointed through their write journals, so {!rewind} restores
    only what the epoch dirtied.  The platform devices and vCPU
    scalars are a few hundred fixed bytes and are captured eagerly.
    Checkpoints nest (see {!Checkpoint} for the mark-based manager);
    a full {!revert} invalidates any open checkpoints. *)

type checkpoint

val checkpoint : t -> checkpoint

type revert_stats = {
  rs_pages : int;        (** guest pages restored *)
  rs_ept_entries : int;  (** EPT override entries restored *)
  rs_vmcs_fields : int;  (** VMCS fields restored *)
}

val rewind : t -> checkpoint -> revert_stats
(** Restore the domain to the state captured at [checkpoint], undoing
    only journaled writes.  The checkpoint stays live and can be
    rewound to again.  Observably identical to [revert] with a full
    snapshot taken at the same point. *)

val release : t -> checkpoint -> unit
(** Drop the innermost checkpoint without restoring, folding its
    journals into the parent epoch. *)

(** {2 Modeled restore footprint}

    Deterministic byte-cost model used by the bench's revert gate:
    how many bytes each restore path must touch. *)

val snapshot_bytes : snapshot -> int
(** Footprint of a full [revert] from [snapshot]. *)

val rewind_bytes : revert_stats -> int
(** Footprint of the COW [rewind] that produced [revert_stats]. *)
