(** Wiring telemetry into a hypervisor context.

    [attach hub ctx] interns the per-exit-reason instrument pack
    against [hub]'s registry (shared across every context attached to
    the same hub — the record VM and the dummy VM of one campaign
    accumulate into the same counters, on separate trace tracks) and
    installs it at the two existing seams: the {!Hooks} probe slot
    consulted by {!Exitpath} and {!Access}, and the engine's exit
    counter family.  Detaching restores the uninstrumented hot path. *)

val reason_labels : string array
(** Chrome-trace/metric label per basic exit-reason code
    ({!Iris_vtx.Exit_reason.code}); reserved codes label ["RSVD<n>"]. *)

val attach : Iris_telemetry.Hub.t -> Ctx.t -> Iris_telemetry.Probe.t

val detach : Ctx.t -> unit

val probe : Ctx.t -> Iris_telemetry.Probe.t option
(** The probe attached to this context, if any. *)
