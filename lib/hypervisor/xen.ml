open Iris_x86
module F = Iris_vmcs.Field
module C = Iris_vmcs.Controls
module V = Iris_vmcs.Vmcs
module Op = Iris_vmcs.Vmx_op

(* Domain ids are allocated atomically: orchestrator workers construct
   their hypervisor instances concurrently from separate domains. *)
let next_domid = Atomic.make 0

let construct ?(dummy = false) ?id ?mem_mib ~cov ~hooks ~name () =
  (* Both the test VM and the dummy VM are 1 GiB DomUs in the paper's
     setup; the backing store is sparse, so this costs nothing. *)
  let mem_mib = match mem_mib with Some m -> m | None -> 1024 in
  let id =
    match id with
    | Some id -> id
    | None -> Atomic.fetch_and_add next_domid 1
  in
  let dom = Domain.create ~dummy ~cov ~id ~name ~mem_mib () in
  let ctx = Ctx.create ~dom ~cov ~hooks in
  let vcpu = dom.Domain.vcpu in
  let vmx = vcpu.Iris_vtx.Vcpu.vmx in
  (match Op.vmxon vmx with
  | Ok () -> ()
  | Error e -> Ctx.panic ctx (Format.asprintf "VMXON: %a" Op.pp_error e));
  (match Op.vmclear vmx vcpu.Iris_vtx.Vcpu.vmcs with
  | Ok () -> ()
  | Error e -> Ctx.panic ctx (Format.asprintf "VMCLEAR: %a" Op.pp_error e));
  (match Op.vmptrld vmx vcpu.Iris_vtx.Vcpu.vmcs with
  | Ok () -> ()
  | Error e -> Ctx.panic ctx (Format.asprintf "VMPTRLD: %a" Op.pp_error e));
  let w f v = Access.vmwrite ctx f v in
  (* Execution controls. *)
  let pin =
    Int64.logor C.pin_reserved_one_mask
      (Int64.logor C.pin_ext_intr_exiting C.pin_nmi_exiting)
  in
  let pin =
    if dummy then Int64.logor pin C.pin_preemption_timer else pin
  in
  w F.pin_based_vm_exec_control pin;
  let cpu =
    List.fold_left Int64.logor C.cpu_reserved_one_mask
      [ C.cpu_hlt_exiting; C.cpu_rdtsc_exiting; C.cpu_tsc_offsetting;
        C.cpu_uncond_io_exiting; C.cpu_cr8_load_exiting;
        C.cpu_cr8_store_exiting; C.cpu_secondary_controls ]
  in
  w F.cpu_based_vm_exec_control cpu;
  let sec =
    List.fold_left Int64.logor 0L
      [ C.sec_enable_ept; C.sec_unrestricted_guest; C.sec_enable_rdtscp;
        C.sec_enable_vpid ]
  in
  w F.secondary_vm_exec_control sec;
  w F.vm_exit_controls
    (List.fold_left Int64.logor C.exit_reserved_one_mask
       [ C.exit_host_addr_space_size; C.exit_ack_intr_on_exit;
         C.exit_save_ia32_efer; C.exit_load_ia32_efer ]);
  w F.vm_entry_controls C.entry_reserved_one_mask;
  (* Trap #MC and #DF from the guest. *)
  w F.exception_bitmap
    (Int64.logor
       (Iris_util.Bits.bit (Exn.vector Exn.MC))
       (Iris_util.Bits.bit (Exn.vector Exn.DF)));
  w F.vpid (Int64.of_int (id + 1));
  w F.tsc_offset 0L;
  w F.ept_pointer 0x1000_001EL;
  (* CR masks: the host owns the mode/paging/cache bits of CR0 and the
     feature bits of CR4; guest writes touching them trap. *)
  let cr0_mask =
    List.fold_left
      (fun acc f -> Cr0.set acc f)
      0L [ Cr0.PE; Cr0.PG; Cr0.TS; Cr0.NE; Cr0.NW; Cr0.CD; Cr0.WP ]
  in
  w F.cr0_guest_host_mask cr0_mask;
  w F.cr0_read_shadow Cr0.reset_value;
  let cr4_mask =
    List.fold_left
      (fun acc f -> Cr4.set acc f)
      0L [ Cr4.VMXE; Cr4.PAE; Cr4.PSE; Cr4.PGE; Cr4.SMEP ]
  in
  w F.cr4_guest_host_mask cr4_mask;
  w F.cr4_read_shadow 0L;
  (* Host-state area. *)
  w F.host_cr0 (Cr0.set (Cr0.set (Cr0.set 0L Cr0.PE) Cr0.PG) Cr0.NE);
  w F.host_cr3 0x80000000L;
  w F.host_cr4 (Cr4.set (Cr4.set 0L Cr4.VMXE) Cr4.PAE);
  w F.host_rip 0xFFFF82D080200000L;
  w F.host_rsp 0xFFFF82D080407F00L;
  w F.host_cs_selector 0xE008L;
  w F.host_ss_selector 0x0L;
  w F.host_ds_selector 0x0L;
  w F.host_es_selector 0x0L;
  w F.host_fs_selector 0x0L;
  w F.host_gs_selector 0x0L;
  w F.host_tr_selector 0xE040L;
  w F.host_ia32_efer (Int64.logor Msr.efer_lme Msr.efer_lma);
  (* Guest-state area: hardware-style save of the reset state, plus
     the bits VMCLEAR conventions demand. *)
  Iris_vtx.Vcpu.save_to_vmcs vcpu;
  V.write_exit_info vcpu.Iris_vtx.Vcpu.vmcs F.vmcs_link_pointer (-1L);
  (* Real CR0 the guest starts with (shadow holds the reset value). *)
  w F.guest_cr0 (Common.effective_cr0 ~guest_value:Cr0.reset_value);
  w F.guest_cr4 (Cr4.set 0L Cr4.VMXE);
  if dummy then begin
    (* The replay trigger: preemption timer fires before the guest
       executes a single instruction (§V-B). *)
    w F.guest_preemption_timer 0L;
    vcpu.Iris_vtx.Vcpu.preemption_timer <- 0L
  end
  else begin
    (* Host (Xen) periodic timer: 10 ms at 3.6 GHz. *)
    vcpu.Iris_vtx.Vcpu.host_timer_period <- 36_000_000L;
    vcpu.Iris_vtx.Vcpu.host_timer_deadline <- 36_000_000L
  end;
  ctx

type stop_reason =
  | Completed
  | Crashed of string
  | Budget

type run_result = {
  stop : stop_reason;
  exits : int;
  cycles : int64;
}

let enter ctx =
  let vcpu = Ctx.vcpu ctx in
  let vmx = vcpu.Iris_vtx.Vcpu.vmx in
  let launch = not (V.is_launched vcpu.Iris_vtx.Vcpu.vmcs) in
  let result = if launch then Op.vmlaunch vmx else Op.vmresume vmx in
  match result with
  | Ok Op.Entered ->
      Iris_vtx.Engine.complete_entry ctx.Ctx.dom.Domain.engine;
      Ok ()
  | Ok (Op.Entry_failed failure) ->
      let msg = Iris_vmcs.Entry_check.failure_message failure in
      Ctx.logf ctx "(XEN) d%d VM entry failure: %s" ctx.Ctx.dom.Domain.id msg;
      Ctx.domain_crash ctx ("VM entry failure: " ^ msg);
      Error msg
  | Error e ->
      Ctx.panic ctx (Format.asprintf "VM entry VMfail: %a" Op.pp_error e)

(* A blocked vCPU sleeps until the next platform event: fast-forward
   the clock, deliver due timer ticks, and run the interrupt-assist
   wakeup path. *)
let wait_for_event ctx =
  let dom = ctx.Ctx.dom in
  let clock = Ctx.clock ctx in
  let now = Iris_vtx.Clock.now clock in
  (* Only a *guest* event (a virtual platform timer) wakes a blocked
     vCPU; host timer ticks are serviced by the hypervisor natively
     while the guest is descheduled and cause no guest exits. *)
  match Vpt.next_deadline dom.Domain.vpt with
  | None ->
      (* Nothing will ever wake this guest. *)
      Ctx.domain_crash ctx "blocked with no pending timer"
  | Some target ->
      if target > now then
        Iris_vtx.Clock.advance64 clock (Int64.sub target now);
      let fired = Vpt.process dom.Domain.vpt ~now:(Iris_vtx.Clock.now clock) in
      List.iter
        (fun (_, vector) -> Vlapic.accept_irq dom.Domain.vlapic ~vector)
        fired;
      H_intr.assist ctx;
      dom.Domain.blocked <- false

let run ?(max_exits = max_int) ?on_exit ctx ~fetch =
  let dom = ctx.Ctx.dom in
  let clock = Ctx.clock ctx in
  let start_cycles = Iris_vtx.Clock.now clock in
  let exits = ref 0 in
  let result = ref None in
  while !result = None do
    if Domain.crashed dom then
      result :=
        Some (Crashed (match dom.Domain.crashed with Some r -> r | None -> ""))
    else if !exits >= max_exits then result := Some Budget
    else begin
      match Iris_vtx.Engine.run_until_exit dom.Domain.engine ~fetch with
      | Iris_vtx.Engine.Program_done -> result := Some Completed
      | Iris_vtx.Engine.Exit ev ->
          incr exits;
          dom.Domain.pending_insn <- ev.Iris_vtx.Engine.insn;
          Exitpath.handle ctx;
          dom.Domain.pending_insn <- None;
          (match on_exit with Some cb -> cb ev | None -> ());
          if not (Domain.crashed dom) then begin
            if dom.Domain.blocked then wait_for_event ctx;
            if not (Domain.crashed dom) then
              match enter ctx with
              | Ok () -> ()
              | Error msg -> result := Some (Crashed msg)
          end
    end
  done;
  let stop = match !result with Some s -> s | None -> assert false in
  { stop;
    exits = !exits;
    cycles = Int64.sub (Iris_vtx.Clock.now clock) start_cycles }
