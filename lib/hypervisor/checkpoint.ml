(* Mark-based nested checkpoint manager over Domain's COW machinery.

   Marks form a stack: [push] opens a new epoch, [rewind] unwinds to
   any live mark (dropping marks opened after it, keeping the target
   live so it can be rewound to again), [pop] closes the innermost
   mark without restoring.  This is what lets Guided rewind to S_R
   between cases — or to a mid-case mark — without replaying the
   recorded prefix. *)

type mark = {
  m_id : int;
  m_cp : Domain.checkpoint;
}

type t = {
  dom : Domain.t;
  mutable stack : mark list;  (* innermost first *)
  mutable next_id : int;
}

let start dom = { dom; stack = []; next_id = 0 }

let domain t = t.dom

let depth t = List.length t.stack

let push t =
  let m = { m_id = t.next_id; m_cp = Domain.checkpoint t.dom } in
  t.next_id <- t.next_id + 1;
  t.stack <- m :: t.stack;
  m

let mem t m = List.exists (fun m' -> m'.m_id = m.m_id) t.stack

(* Unwind to [m]: rewind (and discard) every mark opened after it,
   innermost first, then rewind [m] itself — which stays on the
   stack.  The inner rewinds are what pops the journal epochs the
   inner marks opened; their per-epoch stats fold into the final
   rewind's counters via the domain's accumulators, but the returned
   [revert_stats] covers the whole unwind. *)
let rewind t m =
  if not (mem t m) then
    invalid_arg "Checkpoint.rewind: mark not live";
  let rec unwind acc = function
    | [] -> assert false
    | m' :: rest ->
        let rs = Domain.rewind t.dom m'.m_cp in
        let acc =
          { Domain.rs_pages = acc.Domain.rs_pages + rs.Domain.rs_pages;
            rs_ept_entries = acc.rs_ept_entries + rs.Domain.rs_ept_entries;
            rs_vmcs_fields = acc.rs_vmcs_fields + rs.Domain.rs_vmcs_fields }
        in
        if m'.m_id = m.m_id then begin
          t.stack <- m' :: rest;
          acc
        end
        else begin
          (* inner mark: its epoch has been rewound; release folds the
             now-empty journals away so the stack depths line up *)
          Domain.release t.dom m'.m_cp;
          unwind acc rest
        end
  in
  unwind
    { Domain.rs_pages = 0; rs_ept_entries = 0; rs_vmcs_fields = 0 }
    t.stack

let pop t m =
  match t.stack with
  | m' :: rest when m'.m_id = m.m_id ->
      Domain.release t.dom m'.m_cp;
      t.stack <- rest
  | _ -> invalid_arg "Checkpoint.pop: not the innermost mark"
