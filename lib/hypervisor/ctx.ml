exception Hypervisor_panic of string

type coverage_backend =
  | Gcov
  | Ipt of Iris_coverage.Ipt.t

type t = {
  dom : Domain.t;
  cov : Iris_coverage.Cov.t;
  hooks : Hooks.t;
  log : string list ref;
  mutable backend : coverage_backend;
  charge : int -> unit;
}

let gcov_probe_cycles = 60

let create ~dom ~cov ~hooks =
  (* [charge] is built once here: the exit path passes it to every
     [Hooks.fire_*] call, and a fresh closure per exit would be an
     allocation on the hottest path in the model. *)
  let clock = dom.Domain.vcpu.Iris_vtx.Vcpu.clock in
  { dom; cov; hooks; log = ref []; backend = Gcov;
    charge = (fun n -> Iris_vtx.Clock.advance clock n) }

let log t line = t.log := line :: !(t.log)

let logf t fmt = Printf.ksprintf (log t) fmt

let log_lines t = List.rev !(t.log)

let domain_crash t reason =
  if not (Domain.crashed t.dom) then begin
    logf t "(XEN) domain_crash called from d%d: %s" t.dom.Domain.id reason;
    Domain.crash t.dom reason
  end

let panic t reason =
  logf t "(XEN) Xen BUG / panic: %s" reason;
  raise (Hypervisor_panic reason)

(* Probes are always accounted into the ground-truth store (the
   analyses are backend-agnostic); the backend decides the runtime
   cost the instrumented hypervisor pays per probe. *)
let hit t comp line =
  Iris_coverage.Cov.hit t.cov comp line;
  let clock = t.dom.Domain.vcpu.Iris_vtx.Vcpu.clock in
  match t.backend with
  | Gcov -> Iris_vtx.Clock.advance clock gcov_probe_cycles
  | Ipt trace ->
      Iris_coverage.Ipt.emit trace comp line;
      Iris_vtx.Clock.advance clock Iris_coverage.Ipt.emit_cost_cycles

let clock t = t.dom.Domain.vcpu.Iris_vtx.Vcpu.clock

let vcpu t = t.dom.Domain.vcpu

let regs t = t.dom.Domain.vcpu.Iris_vtx.Vcpu.regs
