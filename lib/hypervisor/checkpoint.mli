(** Nested checkpoints over {!Domain}'s copy-on-write machinery.

    A [Checkpoint.t] manages a stack of marks on one domain.  Each
    mark opens a journal epoch in guest memory, the EPT and the VMCS;
    {!rewind} undoes only what was written after the mark, so the
    fuzzer can rewind to the S_R anchor — or to a mid-case mark —
    without replaying the recorded prefix (kAFL/Nyx-style
    snapshot-reset).

    The determinism contract: rewinding to a mark is observably
    identical to a full [Domain.revert] with a snapshot taken at the
    same point. *)

type t

type mark

val start : Domain.t -> t
(** A manager with an empty mark stack.  Taking a full
    [Domain.revert] on the domain afterwards invalidates all marks. *)

val domain : t -> Domain.t

val push : t -> mark
(** Open a new innermost mark at the domain's current state. *)

val rewind : t -> mark -> Domain.revert_stats
(** Restore the domain to the state at [mark].  Marks opened after it
    are discarded; [mark] itself stays live and can be rewound to
    again.  Returns the combined restore footprint of the unwind.
    Raises [Invalid_argument] if [mark] was already discarded. *)

val pop : t -> mark -> unit
(** Close [mark] without restoring, folding its journal into the
    parent epoch.  Raises [Invalid_argument] unless [mark] is the
    innermost live mark. *)

val depth : t -> int
(** Number of live marks. *)
