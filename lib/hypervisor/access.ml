module F = Iris_vmcs.Field
module Op = Iris_vmcs.Vmx_op

let charge ctx n = Iris_vtx.Clock.advance (Ctx.clock ctx) n

let vmx ctx = (Ctx.vcpu ctx).Iris_vtx.Vcpu.vmx

let probe_vmread ctx =
  match ctx.Ctx.hooks.Hooks.probe with
  | None -> ()
  | Some p -> Iris_telemetry.Probe.on_vmread p

let probe_vmwrite ctx =
  match ctx.Ctx.hooks.Hooks.probe with
  | None -> ()
  | Some p -> Iris_telemetry.Probe.on_vmwrite p

let vmread ctx field =
  charge ctx Iris_vtx.Cost.vmread_cost;
  probe_vmread ctx;
  match Op.vmread (vmx ctx) field with
  | Error e ->
      Ctx.panic ctx
        (Format.asprintf "vmread(%s) failed: %a" (F.name field) Op.pp_error e)
  | Ok raw ->
      let hooks = ctx.Ctx.hooks in
      let charge = charge ctx in
      let value = Hooks.fire_vmread_filter hooks ~charge field raw in
      Hooks.fire_vmread hooks ~charge field value;
      value

let vmwrite ctx field value =
  charge ctx Iris_vtx.Cost.vmwrite_cost;
  probe_vmwrite ctx;
  Hooks.fire_vmwrite ctx.Ctx.hooks ~charge:(charge ctx) field value;
  match Op.vmwrite (vmx ctx) field value with
  | Ok () -> ()
  | Error e ->
      Ctx.panic ctx
        (Format.asprintf "vmwrite(%s, 0x%Lx) failed: %a" (F.name field) value
           Op.pp_error e)

let vmread_raw ctx field =
  match Op.vmread (vmx ctx) field with
  | Ok v -> v
  | Error e ->
      Ctx.panic ctx
        (Format.asprintf "vmread_raw(%s) failed: %a" (F.name field)
           Op.pp_error e)

let vmwrite_raw ctx field value =
  if F.readonly field then
    invalid_arg ("Access.vmwrite_raw: read-only field " ^ F.name field);
  match Op.vmwrite (vmx ctx) field value with
  | Ok () -> ()
  | Error e ->
      Ctx.panic ctx
        (Format.asprintf "vmwrite_raw(%s) failed: %a" (F.name field)
           Op.pp_error e)
