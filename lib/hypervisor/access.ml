module F = Iris_vmcs.Field
module Op = Iris_vmcs.Vmx_op

let charge ctx n = ctx.Ctx.charge n

let vmx ctx = (Ctx.vcpu ctx).Iris_vtx.Vcpu.vmx

let probe_vmread ctx =
  match ctx.Ctx.hooks.Hooks.probe with
  | None -> ()
  | Some p -> Iris_telemetry.Probe.on_vmread p

let probe_vmwrite ctx =
  match ctx.Ctx.hooks.Hooks.probe with
  | None -> ()
  | Some p -> Iris_telemetry.Probe.on_vmwrite p

(* The hypervisor's own VMCS accesses treat failure as fatal, so the
   hot path reads the current VMCS directly instead of routing through
   [Op.vmread]'s Result (whose closure + [Ok] box are per-call minor
   allocations on every exit). *)

let current_vmcs ctx op =
  if Op.in_vmx_operation op then
    match Op.current op with
    | Some vmcs -> vmcs
    | None -> Ctx.panic ctx "VMCS access with no current VMCS"
  else Ctx.panic ctx "VMCS access outside VMX operation"

let vmread ctx field =
  charge ctx Iris_vtx.Cost.vmread_cost;
  probe_vmread ctx;
  let vmcs = current_vmcs ctx (vmx ctx) in
  let raw = Iris_vmcs.Vmcs.read vmcs field in
  let hooks = ctx.Ctx.hooks in
  let charge = ctx.Ctx.charge in
  let value = Hooks.fire_vmread_filter hooks ~charge field raw in
  Hooks.fire_vmread hooks ~charge field value;
  value

let vmwrite ctx field value =
  charge ctx Iris_vtx.Cost.vmwrite_cost;
  probe_vmwrite ctx;
  Hooks.fire_vmwrite ctx.Ctx.hooks ~charge:ctx.Ctx.charge field value;
  let vmcs = current_vmcs ctx (vmx ctx) in
  match Iris_vmcs.Vmcs.write vmcs field value with
  | Ok () -> ()
  | Error (Iris_vmcs.Vmcs.Readonly_field f) ->
      Ctx.panic ctx
        (Format.asprintf "vmwrite(%s, 0x%Lx) failed: read-only field"
           (F.name f) value)
  | Error (Iris_vmcs.Vmcs.Unsupported_field enc) ->
      Ctx.panic ctx
        (Format.asprintf "vmwrite(%s, 0x%Lx) failed: unsupported encoding 0x%x"
           (F.name field) value enc)

let vmread_raw ctx field =
  match Op.vmread (vmx ctx) field with
  | Ok v -> v
  | Error e ->
      Ctx.panic ctx
        (Format.asprintf "vmread_raw(%s) failed: %a" (F.name field)
           Op.pp_error e)

let vmwrite_raw ctx field value =
  if F.readonly field then
    invalid_arg ("Access.vmwrite_raw: read-only field " ^ F.name field);
  match Op.vmwrite (vmx ctx) field value with
  | Ok () -> ()
  | Error e ->
      Ctx.panic ctx
        (Format.asprintf "vmwrite_raw(%s) failed: %a" (F.name field)
           Op.pp_error e)
