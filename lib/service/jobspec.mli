(** A campaign job specification — what a tenant submits to the
    service.

    A spec is everything needed to reproduce the job from nothing:
    the workload to record, the recording length, the campaign target
    (exit reason, mutation area, mutation budget) and the PRNG seed.
    Two equal specs denote the same deterministic computation, which
    is why the {!key} is content-derived: the merged report of a
    drained queue is keyed by it, never by submission order. *)

type t = {
  tenant : string;       (** owner; the fair scheduler's flow id *)
  priority : int;        (** DRR weight, >= 1 *)
  workload : Iris_guest.Workload.t;
  exits : int;           (** VM exits to record *)
  reason : Iris_vtx.Exit_reason.t;
  area : Iris_fuzzer.Mutation.area;
  mutations : int;       (** campaign budget N *)
  prng_seed : int;       (** manager + campaign PRNG seed *)
  boot_scale : float;
  timeout_cycles : int64 option;
      (** modeled-cycle budget; checked against the job's cumulative
          case cycles in case order, so a timeout truncates at the
          same case regardless of scheduling *)
}

val make :
  ?tenant:string -> ?priority:int -> ?boot_scale:float ->
  ?timeout_cycles:int64 ->
  workload:Iris_guest.Workload.t -> exits:int ->
  reason:Iris_vtx.Exit_reason.t -> area:Iris_fuzzer.Mutation.area ->
  mutations:int -> prng_seed:int -> unit -> t
(** Defaults: tenant ["default"], priority [1], boot_scale [0.05],
    no timeout.  Priorities below 1 clamp to 1. *)

val key : t -> string
(** Content-derived FNV-64 hex key: equal specs, equal keys. *)

val label : t -> string
(** Human-readable one-liner, e.g. ["alice/CPU-bound/RDTSC/GPR m=400"]. *)

val area_string : Iris_fuzzer.Mutation.area -> string
val area_of_string : string -> Iris_fuzzer.Mutation.area option
val reason_of_string : string -> Iris_vtx.Exit_reason.t option
(** Case-insensitive match on the long or short reason name, or a
    decimal basic exit-reason code. *)

val to_json : t -> Iris_telemetry.Json.t
val of_json : Iris_telemetry.Json.t -> (t, string) result
(** Wire encoding.  [reason] serialises as the basic exit-reason code
    but parses from a name too; missing optional fields take the
    {!make} defaults. *)
