(** JSON-lines wire protocol for the campaign daemon.

    One request per line, one response line per request — over a
    Unix-domain socket (daemon mode) or stdin/stdout (pipe mode, what
    CI drives).  Every response is an object with ["ok"] and ["cmd"];
    failures carry ["error"].

    Requests:
    {v
    {"cmd":"submit","spec":{...}}      -> {"ok":true,"id":N,"key":...}
    {"cmd":"status"}                   -> {"ok":true,...snapshot...}
    {"cmd":"cancel","id":N}            -> {"ok":bool}
    {"cmd":"drain"}                    -> {"ok":true,"report_digest":...}
    {"cmd":"verify"}                   -> {"ok":bool,...counts...}
    {"cmd":"corpus"}                   -> {"ok":true,"entries":N,...}
    {"cmd":"distill"}                  -> {"ok":true,"before":N,"after":N}
    {"cmd":"corpus-save","path":P}     -> {"ok":true}
    {"cmd":"corpus-load","path":P}     -> {"ok":true,"added":N}
    {"cmd":"shutdown"}                 -> {"ok":true} and the loop ends
    v} *)

type request =
  | Submit of Jobspec.t
  | Status
  | Cancel of int
  | Drain
  | Verify
  | Corpus_stats
  | Distill
  | Corpus_save of string
  | Corpus_load of string
  | Shutdown

val request_to_line : request -> string
val request_of_line : string -> (request, string) result

val handle : Server.t -> request -> Iris_telemetry.Json.t * bool
(** Execute one request; [true] means stop serving. *)

val handle_line : Server.t -> string -> string * bool
(** [handle] over encoded lines; parse errors become
    [{"ok":false,"error":...}] responses. *)

val response_ok : string -> bool
(** Whether a response line carries ["ok":true]. *)

val serve_pipe : Server.t -> in_channel -> out_channel -> bool
(** Serve line-by-line until EOF or [shutdown]; returns whether every
    response was ok — the pipe-mode exit status. *)

val serve_socket : Server.t -> path:string -> bool
(** Bind a Unix-domain socket at [path] (replacing any stale file)
    and serve one-request connections until [shutdown].  Between
    connections the server [step]s pending work, so jobs progress
    while the daemon waits.  Returns whether every response was ok. *)

val call : path:string -> string -> (string, string) result
(** Client side: connect, send one request line, read the response
    line. *)
