module J = Iris_telemetry.Json
module W = Iris_guest.Workload
module Seed = Iris_core.Seed
module Cov = Iris_coverage.Cov
module Bitmap = Iris_coverage.Bitmap
module Campaign = Iris_fuzzer.Campaign
module Fnv = Iris_util.Fnv64

type meta = {
  m_workload : W.t;
  m_exits : int;
  m_prng_seed : int;
  m_boot_scale : float;
  m_seed_index : int;
}

type entry = {
  e_key : string;
  e_meta : meta;
  e_seed : Seed.t;
  e_points : int array;
  e_digest : string;
}

let meta_fold h (m : meta) =
  let h = Fnv.string h (W.name m.m_workload) in
  let h = Fnv.int h m.m_exits in
  let h = Fnv.int h m.m_prng_seed in
  let h = Fnv.string h (Printf.sprintf "%.6f" m.m_boot_scale) in
  Fnv.int h m.m_seed_index

let entry_key ~meta ~seed =
  let h = meta_fold Fnv.init meta in
  let h = Fnv.string h (Bytes.unsafe_to_string (Seed.encode seed)) in
  Fnv.to_hex h

let points_of_span span =
  let pts =
    Cov.Pset.fold (fun p acc -> (p : Cov.point :> int) :: acc) span []
  in
  let a = Array.of_list (List.rev pts) in
  Array.sort compare a;
  a

let entry ~meta ~seed ~span ~digest =
  { e_key = entry_key ~meta ~seed;
    e_meta = meta;
    e_seed = seed;
    e_points = points_of_span span;
    e_digest = digest }

type t = { store : (string, entry) Hashtbl.t }

let create () = { store = Hashtbl.create 64 }

let add t e =
  if Hashtbl.mem t.store e.e_key then false
  else begin
    Hashtbl.replace t.store e.e_key e;
    true
  end

let count t = Hashtbl.length t.store

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.store []
  |> List.sort (fun a b -> compare a.e_key b.e_key)

let coverage t =
  let seen = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun _ e -> Array.iter (fun p -> Hashtbl.replace seen p ()) e.e_points)
    t.store;
  let pts = Hashtbl.fold (fun p () acc -> p :: acc) seen [] in
  let a = Array.of_list pts in
  Array.sort compare a;
  a

let total_points t = Array.length (coverage t)

(* AFL-style admission over one finished campaign: a scratch bitmap
   carries each case's span into the job-local virgin map; novelty
   means the case enters the store.  Case 0 (the unmutated baseline)
   is always a candidate so every job contributes its ground truth. *)
let admit_plan t ~meta ~plan ~raws =
  let virgin = Bitmap.create () in
  let scratch = Bitmap.create () in
  let admitted = ref 0 and dups = ref 0 in
  Array.iteri
    (fun i (raw : Campaign.raw) ->
      Bitmap.reset scratch;
      Bitmap.record_set scratch raw.Campaign.raw_span;
      let novel = Bitmap.merge_new ~virgin scratch in
      if i = 0 || novel > 0 then begin
        let seed = Campaign.case plan i in
        let e =
          entry ~meta ~seed ~span:raw.Campaign.raw_span
            ~digest:(Campaign.raw_digest raw)
        in
        if add t e then incr admitted else incr dups
      end)
    raws;
  (!admitted, !dups)

let distill t =
  let before = count t in
  let order =
    entries t
    |> List.sort (fun a b ->
           match
             compare (Array.length b.e_points) (Array.length a.e_points)
           with
           | 0 -> compare a.e_key b.e_key
           | c -> c)
  in
  let covered = Hashtbl.create 1024 in
  let keep = ref [] in
  List.iter
    (fun e ->
      let contributes =
        Array.exists (fun p -> not (Hashtbl.mem covered p)) e.e_points
      in
      if contributes then begin
        Array.iter (fun p -> Hashtbl.replace covered p ()) e.e_points;
        keep := e :: !keep
      end)
    order;
  Hashtbl.reset t.store;
  List.iter (fun e -> Hashtbl.replace t.store e.e_key e) !keep;
  (before, count t)

let digest t =
  let h =
    List.fold_left
      (fun h e ->
        let h = Fnv.string h e.e_key in
        let h = Fnv.string h e.e_digest in
        Array.fold_left Fnv.int h e.e_points)
      Fnv.init (entries t)
  in
  Fnv.to_hex h

(* --- persistence --- *)

let to_hex_string (b : bytes) =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let of_hex_string s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "corpus: odd hex length"
  else
    try
      Ok
        (Bytes.init (n / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> Error "corpus: bad hex"

let entry_to_json e =
  J.Obj
    [ ("key", J.String e.e_key);
      ("workload", J.String (W.name e.e_meta.m_workload));
      ("exits", J.Int e.e_meta.m_exits);
      ("prng_seed", J.Int e.e_meta.m_prng_seed);
      ("boot_scale", J.Float e.e_meta.m_boot_scale);
      ("seed_index", J.Int e.e_meta.m_seed_index);
      ("points", J.List (Array.to_list (Array.map (fun p -> J.Int p) e.e_points)));
      ("digest", J.String e.e_digest);
      ("seed", J.String (to_hex_string (Seed.encode e.e_seed))) ]

let to_json t =
  J.Obj
    [ ("schema", J.String "iris-corpus-v1");
      ("entries", J.List (List.map entry_to_json (entries t))) ]

let entry_of_json j =
  let ( let* ) = Result.bind in
  let str k =
    match Option.bind (J.member k j) J.string_value with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "corpus: missing %S" k)
  in
  let int k =
    match Option.bind (J.member k j) J.int_value with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "corpus: missing %S" k)
  in
  let* wname = str "workload" in
  let* workload =
    match W.of_name wname with
    | Some w -> Ok w
    | None -> Error "corpus: unknown workload"
  in
  let* exits = int "exits" in
  let* prng_seed = int "prng_seed" in
  let boot_scale =
    match J.member "boot_scale" j with
    | Some (J.Float f) -> f
    | Some (J.Int i) -> float_of_int i
    | _ -> 0.05
  in
  let* seed_index = int "seed_index" in
  let* digest = str "digest" in
  let* seed_hex = str "seed" in
  let* seed_bytes = of_hex_string seed_hex in
  let* seed = Seed.decode seed_bytes in
  let points =
    match J.member "points" j with
    | Some l -> J.to_list l |> List.filter_map J.int_value |> Array.of_list
    | None -> [||]
  in
  Array.sort compare points;
  let meta =
    { m_workload = workload;
      m_exits = exits;
      m_prng_seed = prng_seed;
      m_boot_scale = boot_scale;
      m_seed_index = seed_index }
  in
  Ok
    { e_key = entry_key ~meta ~seed;
      e_meta = meta;
      e_seed = seed;
      e_points = points;
      e_digest = digest }

let of_json j =
  match J.member "schema" j with
  | Some (J.String "iris-corpus-v1") -> (
      let t = create () in
      let rec go = function
        | [] -> Ok t
        | e :: rest -> (
            match entry_of_json e with
            | Ok entry ->
                ignore (add t entry : bool);
                go rest
            | Error _ as err -> err)
      in
      match J.member "entries" j with
      | Some l -> go (J.to_list l)
      | None -> Error "corpus: missing entries")
  | _ -> Error "corpus: not an iris-corpus-v1 document"

let save t ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string (to_json t) ^ "\n"))

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | s -> Result.bind (J.of_string (String.trim s)) of_json

let merge_from t other =
  List.fold_left (fun n e -> if add t e then n + 1 else n) 0 (entries other)
