(** Durable corpus store: seeds keyed by coverage contribution.

    An entry is one interesting test case — a (possibly mutated) VM
    seed plus the replay context that makes it reproducible from
    nothing (workload, recording length, manager PRNG seed, boot
    scale, anchor index) — keyed by an FNV-64 content digest, so
    adding the same case twice is a no-op (dedup idempotence).

    Admission is AFL-style: walking a finished campaign's cases in
    index order, a case enters the corpus iff it lights up a virgin
    slot of the job-local coverage bitmap (the baseline always does).
    Since case outcomes are pure functions of (S_R, seed) and the
    walk order is the case order, the admitted set is a function of
    the job spec alone — scheduling cannot change the corpus.

    Distillation is a greedy set cover over the entries' coverage
    point sets (largest first, key as tie-break): entries whose
    points are all covered by kept entries are dropped.  The union of
    covered points is preserved exactly. *)

type meta = {
  m_workload : Iris_guest.Workload.t;
  m_exits : int;
  m_prng_seed : int;
  m_boot_scale : float;
  m_seed_index : int;  (** anchor index R — prefix replayed to S_R *)
}

type entry = {
  e_key : string;      (** FNV-64 over meta + encoded seed bytes *)
  e_meta : meta;
  e_seed : Iris_core.Seed.t;
  e_points : int array; (** sorted packed coverage points of its span *)
  e_digest : string;   (** {!Iris_fuzzer.Campaign.raw_digest} at admission *)
}

val entry :
  meta:meta -> seed:Iris_core.Seed.t ->
  span:Iris_coverage.Cov.Pset.t -> digest:string -> entry

type t

val create : unit -> t

val add : t -> entry -> bool
(** [false] when an entry with the same key is already stored. *)

val count : t -> int
val entries : t -> entry list  (** sorted by key *)

val coverage : t -> int array
(** Sorted union of all stored entries' points. *)

val total_points : t -> int
(** [Array.length (coverage t)]. *)

val admit_plan :
  t -> meta:meta -> plan:Iris_fuzzer.Campaign.plan ->
  raws:Iris_fuzzer.Campaign.raw array -> int * int
(** Walk a finished campaign in case order, admitting novel cases;
    returns [(admitted, duplicates)]. *)

val distill : t -> int * int
(** Greedy coverage-preserving reduction; [(before, after)] entry
    counts. *)

val digest : t -> string
(** FNV-64 over the sorted entries — equal stores digest equal. *)

val to_json : t -> Iris_telemetry.Json.t
val of_json : Iris_telemetry.Json.t -> (t, string) result

val save : t -> path:string -> unit
val load : path:string -> (t, string) result
(** One JSON document ([iris-corpus-v1]); seeds ride as hex. *)

val merge_from : t -> t -> int
(** Add every entry of the second store into the first; returns how
    many were new. *)
