module J = Iris_telemetry.Json
module Hub = Iris_telemetry.Hub
module Registry = Iris_telemetry.Registry
module Export = Iris_telemetry.Export
module W = Iris_guest.Workload
module R = Iris_vtx.Exit_reason
module Seed = Iris_core.Seed
module Trace = Iris_core.Trace
module Manager = Iris_core.Manager
module Replayer = Iris_core.Replayer
module Cov = Iris_coverage.Cov
module Campaign = Iris_fuzzer.Campaign
module Bisect = Iris_inspect.Bisect
module Provenance = Iris_inspect.Provenance
module Orchestrator = Iris_orchestrator.Orchestrator
module Fnv = Iris_util.Fnv64

type status =
  | Queued
  | Running
  | Completed
  | No_seed
  | Cancelled
  | Timed_out
  | Failed of string

let status_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Completed -> "completed"
  | No_seed -> "no-seed"
  | Cancelled -> "cancelled"
  | Timed_out -> "timed-out"
  | Failed m -> "failed: " ^ m

type job_info = {
  ji_id : int;
  ji_key : string;
  ji_label : string;
  ji_tenant : string;
  ji_status : status;
  ji_done : int;
  ji_total : int;
  ji_respawns : int;
  ji_cycles : int64;
}

(* --- recording cache --- *)

type recordings = (string, Manager.recording) Hashtbl.t

let recordings () : recordings = Hashtbl.create 8

let recording_key ~workload ~exits ~prng_seed ~boot_scale =
  Printf.sprintf "%s|%d|%d|%.6f" (W.name workload) exits prng_seed boot_scale

let ensure_recording (cache : recordings) ~workload ~exits ~prng_seed
    ~boot_scale =
  let key = recording_key ~workload ~exits ~prng_seed ~boot_scale in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let mgr = Manager.create ~boot_scale ~prng_seed () in
      let r =
        Manager.record ~store_seeds:true ~store_metrics:false mgr workload
          ~exits
      in
      Hashtbl.replace cache key r;
      r

(* A dummy at the recording's initial state (no anchor) — what the
   bisector's [make_replayer] wants, one per attempt. *)
let fresh_replayer recording ~name =
  let cov = Cov.create () in
  let hooks = Iris_hv.Hooks.create () in
  let ctx = Iris_hv.Xen.construct ~dummy:true ~cov ~hooks ~name () in
  Manager.arm_dummy ctx ~revert_to:(Some recording.Manager.snapshot)
    ~keep_memory:false;
  Replayer.create ctx

(* --- jobs --- *)

type universe = {
  u_replayer : Replayer.t;
  u_anchor : Campaign.anchor;
}

type job = {
  j_id : int;
  j_spec : Jobspec.t;
  j_key : string;
  j_hub : Hub.t;
  mutable j_status : status;
  mutable j_recording : Manager.recording option;
  mutable j_plan : Campaign.plan option;
  mutable j_raws : Campaign.raw option array;
  mutable j_done : int;
  mutable j_universe : universe option;
  mutable j_respawns : int;
  mutable j_cycles : int64;
  mutable j_cancel : bool;
  mutable j_result : Campaign.result option;
  (* per-round scratch, written by the executing domain, read after
     the join barrier *)
  mutable j_round_consumed : int;
  mutable j_round_panic : string option;
  mutable j_round_timeout : bool;
}

type t = {
  queue : Jobqueue.t;
  jobs : (int, job) Hashtbl.t;
  mutable order : int list;  (* submission order, reversed *)
  mutable next_id : int;
  pool_jobs : int;
  max_respawns : int;
  cache : recordings;
  provenance : (string, Provenance.t) Hashtbl.t;  (* recording key -> index *)
  corpus_store : Corpus.t;
  triage_store : Triage.t;
  server_hub : Hub.t;
  status_sink : (string -> unit) option;
  mutable status_seq : int;
}

let create ?(jobs = 1) ?(quantum = 256) ?(max_respawns = 5) ?recordings:cache
    ?status_sink () =
  { queue = Jobqueue.create ~quantum ();
    jobs = Hashtbl.create 16;
    order = [];
    next_id = 0;
    pool_jobs = max 1 jobs;
    max_respawns;
    cache = (match cache with Some c -> c | None -> Hashtbl.create 8);
    provenance = Hashtbl.create 8;
    corpus_store = Corpus.create ();
    triage_store = Triage.create ();
    server_hub = Hub.create ();
    status_sink;
    status_seq = 0 }

let counter t name = Registry.counter t.server_hub.Hub.registry name

let gauge t name = Registry.gauge t.server_hub.Hub.registry name

let submit t spec =
  let id = t.next_id in
  t.next_id <- id + 1;
  let job =
    { j_id = id;
      j_spec = spec;
      j_key = Jobspec.key spec;
      j_hub = Hub.create ();
      j_status = Queued;
      j_recording = None;
      j_plan = None;
      j_raws = [||];
      j_done = 0;
      j_universe = None;
      j_respawns = 0;
      j_cycles = 0L;
      j_cancel = false;
      j_result = None;
      j_round_consumed = 0;
      j_round_panic = None;
      j_round_timeout = false }
  in
  Hashtbl.replace t.jobs id job;
  t.order <- id :: t.order;
  Jobqueue.submit t.queue ~id ~tenant:spec.Jobspec.tenant
    ~weight:spec.Jobspec.priority;
  Registry.incr (counter t "service.jobs_submitted");
  id

let job t id = Hashtbl.find t.jobs id

let finished job =
  match job.j_status with
  | Queued | Running -> false
  | Completed | No_seed | Cancelled | Timed_out | Failed _ -> true

let cancel t id =
  match Hashtbl.find_opt t.jobs id with
  | None -> false
  | Some job when finished job -> false
  | Some job ->
      job.j_cancel <- true;
      if Jobqueue.cancel t.queue id then begin
        job.j_status <- Cancelled;
        Registry.incr (counter t "service.jobs_cancelled")
      end;
      (* if in flight, the round post-processing finishes it *)
      true

(* --- per-job preparation (main domain: touches the shared caches) --- *)

let spec_meta (spec : Jobspec.t) ~seed_index =
  { Corpus.m_workload = spec.Jobspec.workload;
    m_exits = spec.Jobspec.exits;
    m_prng_seed = spec.Jobspec.prng_seed;
    m_boot_scale = spec.Jobspec.boot_scale;
    m_seed_index = seed_index }

let job_recording t job =
  match job.j_recording with
  | Some r -> r
  | None ->
      let s = job.j_spec in
      let r =
        ensure_recording t.cache ~workload:s.Jobspec.workload
          ~exits:s.Jobspec.exits ~prng_seed:s.Jobspec.prng_seed
          ~boot_scale:s.Jobspec.boot_scale
      in
      job.j_recording <- Some r;
      r

let job_provenance t job recording =
  let s = job.j_spec in
  let key =
    recording_key ~workload:s.Jobspec.workload ~exits:s.Jobspec.exits
      ~prng_seed:s.Jobspec.prng_seed ~boot_scale:s.Jobspec.boot_scale
  in
  match Hashtbl.find_opt t.provenance key with
  | Some p -> p
  | None ->
      let p = Provenance.build recording.Manager.trace in
      Hashtbl.replace t.provenance key p;
      p

(* Returns [false] when the job finished during preparation (no seed
   with the requested reason, or the recording failed). *)
let prepare t job =
  try
    let recording = job_recording t job in
    match job.j_plan with
    | Some _ -> true
    | None -> (
        let s = job.j_spec in
        let config =
          { Campaign.mutations = s.Jobspec.mutations;
            prng_seed = s.Jobspec.prng_seed }
        in
        match
          Campaign.plan ~config ~trace:recording.Manager.trace
            ~reason:s.Jobspec.reason ~area:s.Jobspec.area
        with
        | None ->
            job.j_status <- No_seed;
            Registry.incr (counter t "service.jobs_no_seed");
            false
        | Some plan ->
            job.j_plan <- Some plan;
            job.j_raws <- Array.make (Campaign.case_count plan) None;
            true)
  with exn ->
    job.j_status <- Failed ("prepare: " ^ Printexc.to_string exn);
    Registry.incr (counter t "service.jobs_failed");
    false

(* --- quantum execution (runs on the job's own domain) --- *)

let panic_raw msg =
  { Campaign.raw_failure = Campaign.Hypervisor_crash;
    raw_detail = "worker context died: " ^ msg;
    raw_span = Cov.Pset.empty;
    raw_cycles = 0L }

let timed_out job =
  match job.j_spec.Jobspec.timeout_cycles with
  | None -> false
  | Some budget -> job.j_cycles >= budget

(* Execute up to [budget] cases of [job], in case order.  Outcomes are
   pure functions of (S_R, seed), so the only effect of quantum
   boundaries is *where* this loop pauses — never what it computes.
   Never raises: panics record a crash outcome for the current case
   and drop the universe for respawn. *)
let exec_quantum job budget =
  job.j_round_consumed <- 0;
  job.j_round_panic <- None;
  job.j_round_timeout <- false;
  let plan =
    match job.j_plan with Some p -> p | None -> assert false
  in
  let recording =
    match job.j_recording with Some r -> r | None -> assert false
  in
  let seed_index = plan.Campaign.plan_target.Seed.index in
  let total = Campaign.case_count plan in
  try
    let universe =
      match job.j_universe with
      | Some u -> u
      | None ->
          let replayer, anchor, _setup =
            Orchestrator.boot_universe ~hub:job.j_hub ~recording ~seed_index
              ~name:(Printf.sprintf "svc-%s-dummy" job.j_key)
              ()
          in
          let u = { u_replayer = replayer; u_anchor = anchor } in
          job.j_universe <- Some u;
          u
    in
    let continue = ref true in
    while
      !continue && job.j_round_consumed < budget && job.j_done < total
    do
      if timed_out job then begin
        job.j_round_timeout <- true;
        continue := false
      end
      else begin
        let i = job.j_done in
        let seed = Campaign.case plan i in
        (match
           Campaign.execute_case ~replayer:universe.u_replayer
             ~anchor:universe.u_anchor seed
         with
        | raw ->
            job.j_raws.(i) <- Some raw;
            job.j_cycles <- Int64.add job.j_cycles raw.Campaign.raw_cycles
        | exception exn ->
            job.j_raws.(i) <- Some (panic_raw (Printexc.to_string exn));
            job.j_universe <- None;
            job.j_round_panic <- Some (Printexc.to_string exn);
            continue := false);
        job.j_done <- i + 1;
        job.j_round_consumed <- job.j_round_consumed + 1
      end
    done;
    if job.j_done >= total then job.j_round_timeout <- false
  with exn ->
    (* universe boot died: nothing executed this round *)
    job.j_universe <- None;
    job.j_round_panic <- Some (Printexc.to_string exn)

(* --- job completion (main domain) --- *)

let note_crashes t job plan recording =
  let seed_index = plan.Campaign.plan_target.Seed.index in
  let prov = job_provenance t job recording in
  let devices =
    List.map
      (fun (d, n) -> (Provenance.device_name d, n))
      (Provenance.devices_touched ~before:seed_index prov)
  in
  let prefix =
    Array.sub recording.Manager.trace.Trace.seeds 0 seed_index
  in
  Array.iteri
    (fun i raw_opt ->
      match raw_opt with
      | Some (raw : Campaign.raw)
        when raw.Campaign.raw_failure <> Campaign.No_failure ->
          let span =
            Cov.Pset.fold
              (fun p acc -> (p : Cov.point :> int) :: acc)
              raw.Campaign.raw_span []
            |> List.rev |> Array.of_list
          in
          let crash =
            { Triage.c_spec_key = job.j_key;
              c_case = i;
              c_reason = plan.Campaign.plan_reason;
              c_failure = raw.Campaign.raw_failure;
              c_detail = raw.Campaign.raw_detail;
              c_span = span;
              c_devices = devices }
          in
          let minimize () =
            let crasher = Campaign.case plan i in
            let make_replayer () =
              fresh_replayer recording
                ~name:(Printf.sprintf "svc-%s-triage" job.j_key)
            in
            match Bisect.minimize ~make_replayer ~prefix ~crasher with
            | None -> None
            | Some b ->
                Some
                  { Triage.r_digest = b.Bisect.b_digest;
                    r_seeds = Array.length b.Bisect.b_seeds;
                    r_deterministic = b.Bisect.b_deterministic;
                    r_attempts = b.Bisect.b_attempts }
          in
          (match Triage.note t.triage_store crash ~minimize with
          | `New -> Registry.incr (counter t "service.triage_new_buckets")
          | `Counted | `Replaced -> ());
          Registry.incr (counter t "service.crashes")
      | Some _ | None -> ())
    job.j_raws

let finish_completed t job =
  let plan = match job.j_plan with Some p -> p | None -> assert false in
  let recording =
    match job.j_recording with Some r -> r | None -> assert false
  in
  let raws =
    Array.map
      (function Some r -> r | None -> assert false)
      job.j_raws
  in
  let result = Campaign.finalize ~plan ~raws in
  job.j_result <- Some result;
  job.j_status <- Completed;
  let seed_index = plan.Campaign.plan_target.Seed.index in
  let meta = spec_meta job.j_spec ~seed_index in
  let admitted, dups =
    Corpus.admit_plan t.corpus_store ~meta ~plan ~raws
  in
  Registry.add (counter t "service.corpus_admitted") admitted;
  Registry.add (counter t "service.corpus_duplicates") dups;
  note_crashes t job plan recording;
  Registry.add (counter t "service.vm_crashes") result.Campaign.vm_crashes;
  Registry.add (counter t "service.hv_crashes") result.Campaign.hv_crashes;
  Registry.incr (counter t "service.jobs_completed");
  Hub.merge_into ~into:t.server_hub job.j_hub;
  Registry.set (gauge t "service.corpus_entries")
    (Int64.of_int (Corpus.count t.corpus_store));
  Registry.set (gauge t "service.triage_buckets")
    (Int64.of_int (Triage.count t.triage_store))

(* --- the scheduling round --- *)

let backoff_rounds respawns = min 8 (1 lsl min respawns 3)

let post_round t picks =
  List.iter
    (fun (id, _budget) ->
      let job = job t id in
      let consumed = job.j_round_consumed in
      Registry.add (counter t "service.cases") consumed;
      let total =
        match job.j_plan with
        | Some p -> Campaign.case_count p
        | None -> max_int
      in
      if job.j_cancel then begin
        job.j_status <- Cancelled;
        job.j_universe <- None;
        Registry.incr (counter t "service.jobs_cancelled");
        Jobqueue.complete t.queue ~id ~consumed ~finished:true
      end
      else if job.j_done >= total then begin
        finish_completed t job;
        job.j_universe <- None;
        Jobqueue.complete t.queue ~id ~consumed ~finished:true
      end
      else if job.j_round_timeout then begin
        job.j_status <- Timed_out;
        job.j_universe <- None;
        Registry.incr (counter t "service.jobs_timed_out");
        Jobqueue.complete t.queue ~id ~consumed ~finished:true
      end
      else
        match job.j_round_panic with
        | Some msg when job.j_respawns >= t.max_respawns ->
            job.j_status <- Failed ("respawn budget exhausted: " ^ msg);
            job.j_universe <- None;
            Registry.incr (counter t "service.jobs_failed");
            Jobqueue.complete t.queue ~id ~consumed ~finished:true
        | Some _ ->
            job.j_respawns <- job.j_respawns + 1;
            Registry.incr (counter t "service.respawns");
            Jobqueue.defer t.queue id
              ~rounds:(backoff_rounds job.j_respawns);
            Jobqueue.complete t.queue ~id ~consumed ~finished:false
        | None -> Jobqueue.complete t.queue ~id ~consumed ~finished:false)
    picks

let job_infos t =
  List.rev_map
    (fun id ->
      let j = job t id in
      { ji_id = j.j_id;
        ji_key = j.j_key;
        ji_label = Jobspec.label j.j_spec;
        ji_tenant = j.j_spec.Jobspec.tenant;
        ji_status = j.j_status;
        ji_done = j.j_done;
        ji_total =
          (match j.j_plan with
          | Some p -> Campaign.case_count p
          | None -> -1);
        ji_respawns = j.j_respawns;
        ji_cycles = j.j_cycles })
    t.order

let status_json t =
  let jobs =
    List.map
      (fun ji ->
        J.Obj
          [ ("id", J.Int ji.ji_id);
            ("key", J.String ji.ji_key);
            ("label", J.String ji.ji_label);
            ("tenant", J.String ji.ji_tenant);
            ("status", J.String (status_string ji.ji_status));
            ("done", J.Int ji.ji_done);
            ("total", J.Int ji.ji_total);
            ("respawns", J.Int ji.ji_respawns);
            ("cycles", J.Int (Int64.to_int ji.ji_cycles)) ])
      (job_infos t)
  in
  J.Obj
    [ ("round", J.Int (Jobqueue.round t.queue));
      ("pending", J.Int (List.length (Jobqueue.pending t.queue)));
      ("in_flight", J.Int (List.length (Jobqueue.in_flight t.queue)));
      ("corpus", J.Int (Corpus.count t.corpus_store));
      ("buckets", J.Int (Triage.count t.triage_store));
      ("jobs", J.List jobs) ]

let emit_status t =
  match t.status_sink with
  | None -> ()
  | Some sink ->
      let seq = t.status_seq in
      t.status_seq <- seq + 1;
      let extra =
        match status_json t with J.Obj fields -> fields | _ -> []
      in
      sink (Export.status_line ~extra ~seq (Hub.snapshot t.server_hub))

let step t =
  if Jobqueue.is_idle t.queue then false
  else begin
    let picks = Jobqueue.next t.queue ~max:t.pool_jobs in
    let runnable =
      List.filter
        (fun (id, _) ->
          let j = job t id in
          if j.j_cancel then true  (* post_round finishes it *)
          else if prepare t j then begin
            j.j_status <- Running;
            true
          end
          else begin
            Jobqueue.complete t.queue ~id ~consumed:0 ~finished:true;
            false
          end)
        picks
    in
    let to_run =
      List.filter (fun (id, _) -> not (job t id).j_cancel) runnable
    in
    (match to_run with
    | [] -> ()
    | [ (id, budget) ] -> exec_quantum (job t id) budget
    | _ when t.pool_jobs = 1 ->
        List.iter (fun (id, budget) -> exec_quantum (job t id) budget) to_run
    | _ ->
        (* one domain per distinct job: disjoint universes, disjoint
           job records; the join is the happens-before edge the main
           domain reads results across *)
        List.map
          (fun (id, budget) ->
            let j = job t id in
            Domain.spawn (fun () -> exec_quantum j budget))
          to_run
        |> List.iter Domain.join);
    post_round t runnable;
    Registry.incr (counter t "service.rounds");
    emit_status t;
    true
  end

type drain_summary = {
  d_rounds : int;
  d_completed : int;
  d_failed : int;
  d_crashes : int;
  d_buckets : int;
  d_corpus : int;
  d_report_digest : string;
}

let corpus t = t.corpus_store

let triage t = t.triage_store

let hub t = t.server_hub

let distill t =
  let before, after = Corpus.distill t.corpus_store in
  Registry.set (gauge t "service.corpus_entries")
    (Int64.of_int (Corpus.count t.corpus_store));
  (before, after)

(* --- the merged report --- *)

let result_json (r : Campaign.result) =
  J.Obj
    [ ("reason", J.String (R.short_name r.Campaign.reason));
      ("area", J.String (Jobspec.area_string r.Campaign.area));
      ("seed_index", J.Int r.Campaign.seed_index);
      ("executed", J.Int r.Campaign.executed);
      ("baseline_lines", J.Int r.Campaign.baseline_lines);
      ("fuzz_lines", J.Int r.Campaign.fuzz_lines);
      ( "coverage_increase_pct",
        J.Float r.Campaign.coverage_increase_pct );
      ("vm_crashes", J.Int r.Campaign.vm_crashes);
      ("hv_crashes", J.Int r.Campaign.hv_crashes);
      ("crashing", J.Int (List.length r.Campaign.crashing)) ]

(* Group finished jobs by spec key: identical specs denote identical
   computations, so a group carries one result and a multiplicity.
   Keys are content-derived and the groups sort by key — submission
   order and job ids never reach the report. *)
let report t =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let j = job t id in
      let prev =
        match Hashtbl.find_opt groups j.j_key with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace groups j.j_key (j :: prev))
    t.order;
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) groups [] |> List.sort compare
  in
  let job_objs =
    List.map
      (fun key ->
        let js = Hashtbl.find groups key in
        let statuses =
          List.map (fun j -> status_string j.j_status) js
          |> List.sort compare
        in
        let result =
          match List.find_opt (fun j -> j.j_result <> None) js with
          | Some j -> (
              match j.j_result with
              | Some r -> result_json r
              | None -> J.Null)
          | None -> J.Null
        in
        let sample = List.hd js in
        let partial =
          match sample.j_status with
          | Timed_out ->
              J.Obj
                [ ("executed", J.Int sample.j_done);
                  ("cycles", J.Int (Int64.to_int sample.j_cycles)) ]
          | _ -> J.Null
        in
        J.Obj
          [ ("key", J.String key);
            ("label", J.String (Jobspec.label sample.j_spec));
            ("tenant", J.String sample.j_spec.Jobspec.tenant);
            ("n", J.Int (List.length js));
            ("statuses", J.List (List.map (fun s -> J.String s) statuses));
            ("result", result);
            ("partial", partial) ])
      keys
  in
  J.Obj
    [ ("schema", J.String "iris-serve-report-v1");
      ("jobs", J.List job_objs);
      ( "corpus",
        J.Obj
          [ ("entries", J.Int (Corpus.count t.corpus_store));
            ("points", J.Int (Corpus.total_points t.corpus_store));
            ("digest", J.String (Corpus.digest t.corpus_store)) ] );
      ("triage", Triage.to_json t.triage_store) ]

let report_digest t =
  Fnv.to_hex (Fnv.string Fnv.init (J.to_string (report t)))

let drain t =
  let r0 = Jobqueue.round t.queue in
  while step t do
    ()
  done;
  let completed = ref 0 and failed = ref 0 in
  List.iter
    (fun id ->
      match (job t id).j_status with
      | Completed -> incr completed
      | Failed _ -> incr failed
      | _ -> ())
    t.order;
  { d_rounds = Jobqueue.round t.queue - r0;
    d_completed = !completed;
    d_failed = !failed;
    d_crashes = Triage.total t.triage_store;
    d_buckets = Triage.count t.triage_store;
    d_corpus = Corpus.count t.corpus_store;
    d_report_digest = report_digest t }

(* --- the determinism contract, re-replayed --- *)

type verify_summary = {
  v_corpus_checked : int;
  v_corpus_mismatches : int;
  v_buckets_checked : int;
  v_bucket_mismatches : int;
  v_buckets_unreproduced : int;
}

let verify_ok v =
  v.v_corpus_mismatches = 0
  && v.v_bucket_mismatches = 0
  && v.v_buckets_unreproduced = 0

let meta_key (m : Corpus.meta) =
  Printf.sprintf "%s|%d|%d|%.6f|%d" (W.name m.Corpus.m_workload)
    m.Corpus.m_exits m.Corpus.m_prng_seed m.Corpus.m_boot_scale
    m.Corpus.m_seed_index

let verify_corpus t =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (e : Corpus.entry) ->
      let k = meta_key e.Corpus.e_meta in
      let prev =
        match Hashtbl.find_opt groups k with Some l -> l | None -> []
      in
      Hashtbl.replace groups k (e :: prev))
    (Corpus.entries t.corpus_store);
  let checked = ref 0 and mismatches = ref 0 in
  Hashtbl.iter
    (fun _k entries ->
      match entries with
      | [] -> ()
      | e :: _ ->
          let m = e.Corpus.e_meta in
          let recording =
            ensure_recording t.cache ~workload:m.Corpus.m_workload
              ~exits:m.Corpus.m_exits ~prng_seed:m.Corpus.m_prng_seed
              ~boot_scale:m.Corpus.m_boot_scale
          in
          let replayer, anchor, _setup =
            Orchestrator.boot_universe ~recording
              ~seed_index:m.Corpus.m_seed_index ~name:"svc-verify-dummy" ()
          in
          List.iter
            (fun (e : Corpus.entry) ->
              let raw =
                Campaign.execute_case ~replayer ~anchor e.Corpus.e_seed
              in
              incr checked;
              if Campaign.raw_digest raw <> e.Corpus.e_digest then
                incr mismatches)
            (List.rev entries))
    groups;
  (!checked, !mismatches)

let verify_triage t =
  let by_key = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let j = job t id in
      match (j.j_plan, j.j_recording) with
      | Some plan, Some recording ->
          if not (Hashtbl.mem by_key j.j_key) then
            Hashtbl.replace by_key j.j_key (plan, recording)
      | _ -> ())
    t.order;
  let checked = ref 0 and mismatches = ref 0 and unreproduced = ref 0 in
  List.iter
    (fun (b : Triage.bucket) ->
      match b.Triage.b_repro with
      | None -> incr unreproduced
      | Some repro -> (
          match Hashtbl.find_opt by_key b.Triage.b_rep.Triage.c_spec_key with
          | None -> incr mismatches
          | Some (plan, recording) ->
              incr checked;
              let seed_index = plan.Campaign.plan_target.Seed.index in
              let prefix =
                Array.sub recording.Manager.trace.Trace.seeds 0 seed_index
              in
              let crasher =
                Campaign.case plan b.Triage.b_rep.Triage.c_case
              in
              let make_replayer () =
                fresh_replayer recording ~name:"svc-verify-triage"
              in
              (match Bisect.minimize ~make_replayer ~prefix ~crasher with
              | Some check
                when check.Bisect.b_digest = repro.Triage.r_digest
                     && check.Bisect.b_deterministic ->
                  ()
              | Some _ | None -> incr mismatches)))
    (Triage.buckets t.triage_store);
  (!checked, !mismatches, !unreproduced)

let verify t =
  let corpus_checked, corpus_mismatches = verify_corpus t in
  let buckets_checked, bucket_mismatches, unreproduced = verify_triage t in
  { v_corpus_checked = corpus_checked;
    v_corpus_mismatches = corpus_mismatches;
    v_buckets_checked = buckets_checked;
    v_bucket_mismatches = bucket_mismatches;
    v_buckets_unreproduced = unreproduced }
