module J = Iris_telemetry.Json

type request =
  | Submit of Jobspec.t
  | Status
  | Cancel of int
  | Drain
  | Verify
  | Corpus_stats
  | Distill
  | Corpus_save of string
  | Corpus_load of string
  | Shutdown

let request_to_json = function
  | Submit spec ->
      J.Obj [ ("cmd", J.String "submit"); ("spec", Jobspec.to_json spec) ]
  | Status -> J.Obj [ ("cmd", J.String "status") ]
  | Cancel id -> J.Obj [ ("cmd", J.String "cancel"); ("id", J.Int id) ]
  | Drain -> J.Obj [ ("cmd", J.String "drain") ]
  | Verify -> J.Obj [ ("cmd", J.String "verify") ]
  | Corpus_stats -> J.Obj [ ("cmd", J.String "corpus") ]
  | Distill -> J.Obj [ ("cmd", J.String "distill") ]
  | Corpus_save path ->
      J.Obj [ ("cmd", J.String "corpus-save"); ("path", J.String path) ]
  | Corpus_load path ->
      J.Obj [ ("cmd", J.String "corpus-load"); ("path", J.String path) ]
  | Shutdown -> J.Obj [ ("cmd", J.String "shutdown") ]

let request_to_line r = J.to_string (request_to_json r)

let request_of_json j =
  match Option.bind (J.member "cmd" j) J.string_value with
  | None -> Error "wire: missing \"cmd\""
  | Some cmd -> (
      let str k = Option.bind (J.member k j) J.string_value in
      let int k = Option.bind (J.member k j) J.int_value in
      match cmd with
      | "submit" -> (
          match J.member "spec" j with
          | None -> Error "wire: submit needs \"spec\""
          | Some spec -> (
              match Jobspec.of_json spec with
              | Ok s -> Ok (Submit s)
              | Error e -> Error e))
      | "status" -> Ok Status
      | "cancel" -> (
          match int "id" with
          | Some id -> Ok (Cancel id)
          | None -> Error "wire: cancel needs \"id\"")
      | "drain" -> Ok Drain
      | "verify" -> Ok Verify
      | "corpus" -> Ok Corpus_stats
      | "distill" -> Ok Distill
      | "corpus-save" -> (
          match str "path" with
          | Some p -> Ok (Corpus_save p)
          | None -> Error "wire: corpus-save needs \"path\"")
      | "corpus-load" -> (
          match str "path" with
          | Some p -> Ok (Corpus_load p)
          | None -> Error "wire: corpus-load needs \"path\"")
      | "shutdown" -> Ok Shutdown
      | other -> Error (Printf.sprintf "wire: unknown cmd %S" other))

let request_of_line line = Result.bind (J.of_string line) request_of_json

let ok cmd fields = J.Obj (("ok", J.Bool true) :: ("cmd", J.String cmd) :: fields)

let fail cmd msg =
  J.Obj
    [ ("ok", J.Bool false); ("cmd", J.String cmd); ("error", J.String msg) ]

let obj_fields = function J.Obj fields -> fields | _ -> []

let handle server = function
  | Submit spec ->
      let id = Server.submit server spec in
      (ok "submit" [ ("id", J.Int id); ("key", J.String (Jobspec.key spec)) ], false)
  | Status -> (ok "status" (obj_fields (Server.status_json server)), false)
  | Cancel id ->
      let found = Server.cancel server id in
      ( J.Obj [ ("ok", J.Bool found); ("cmd", J.String "cancel"); ("id", J.Int id) ],
        false )
  | Drain ->
      let d = Server.drain server in
      ( ok "drain"
          [ ("rounds", J.Int d.Server.d_rounds);
            ("completed", J.Int d.Server.d_completed);
            ("failed", J.Int d.Server.d_failed);
            ("crashes", J.Int d.Server.d_crashes);
            ("buckets", J.Int d.Server.d_buckets);
            ("corpus", J.Int d.Server.d_corpus);
            ("report_digest", J.String d.Server.d_report_digest) ],
        false )
  | Verify ->
      let v = Server.verify server in
      ( J.Obj
          [ ("ok", J.Bool (Server.verify_ok v));
            ("cmd", J.String "verify");
            ("corpus_checked", J.Int v.Server.v_corpus_checked);
            ("corpus_mismatches", J.Int v.Server.v_corpus_mismatches);
            ("buckets_checked", J.Int v.Server.v_buckets_checked);
            ("bucket_mismatches", J.Int v.Server.v_bucket_mismatches);
            ("buckets_unreproduced", J.Int v.Server.v_buckets_unreproduced) ],
        false )
  | Corpus_stats ->
      let c = Server.corpus server in
      ( ok "corpus"
          [ ("entries", J.Int (Corpus.count c));
            ("points", J.Int (Corpus.total_points c));
            ("digest", J.String (Corpus.digest c)) ],
        false )
  | Distill ->
      let before, after = Server.distill server in
      ( ok "distill"
          [ ("before", J.Int before);
            ("after", J.Int after);
            ("points", J.Int (Corpus.total_points (Server.corpus server))) ],
        false )
  | Corpus_save path ->
      (try
         Corpus.save (Server.corpus server) ~path;
         (ok "corpus-save" [ ("path", J.String path) ], false)
       with Sys_error e -> (fail "corpus-save" e, false))
  | Corpus_load path -> (
      match Corpus.load ~path with
      | Ok loaded ->
          let added = Corpus.merge_from (Server.corpus server) loaded in
          (ok "corpus-load" [ ("added", J.Int added) ], false)
      | Error e -> (fail "corpus-load" e, false))
  | Shutdown -> (ok "shutdown" [], true)

let handle_line server line =
  match request_of_line line with
  | Error e -> (J.to_string (fail "parse" e), false)
  | Ok req ->
      let resp, stop = handle server req in
      (J.to_string resp, stop)

let response_ok line =
  match J.of_string line with
  | Ok j -> (
      match J.member "ok" j with Some (J.Bool b) -> b | _ -> false)
  | Error _ -> false

let serve_pipe server ic oc =
  let all_ok = ref true in
  let stop = ref false in
  (try
     while not !stop do
       let line = input_line ic in
       if String.trim line <> "" then begin
         let resp, s = handle_line server line in
         if not (response_ok resp) then all_ok := false;
         output_string oc (resp ^ "\n");
         flush oc;
         stop := s
       end
     done
   with End_of_file -> ());
  !all_ok

(* --- Unix-domain socket daemon --- *)

let serve_socket server ~path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  let all_ok = ref true in
  let stop = ref false in
  while not !stop do
    (* progress pending jobs while idle-waiting for clients *)
    let readable, _, _ = Unix.select [ sock ] [] [] 0.02 in
    if readable = [] then ignore (Server.step server : bool)
    else begin
      let client, _ = Unix.accept sock in
      let ic = Unix.in_channel_of_descr client in
      let oc = Unix.out_channel_of_descr client in
      (match input_line ic with
      | exception End_of_file -> ()
      | line ->
          let resp, s = handle_line server line in
          if not (response_ok resp) then all_ok := false;
          output_string oc (resp ^ "\n");
          flush oc;
          stop := s);
      (try Unix.close client with Unix.Unix_error _ -> ())
    end
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  !all_ok

let call ~path line =
  match
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect sock (Unix.ADDR_UNIX path);
        let oc = Unix.out_channel_of_descr sock in
        output_string oc (line ^ "\n");
        flush oc;
        let ic = Unix.in_channel_of_descr sock in
        input_line ic)
  with
  | resp -> Ok resp
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception End_of_file -> Error "connection closed without response"
