(** The persistent campaign server: queue in, merged report out.

    Jobs ({!Jobspec.t}) enter a {!Jobqueue} and are executed in
    deficit-round-robin quanta over isolated per-job universes (built
    with {!Iris_orchestrator.boot_universe}); each scheduling round
    dispatches up to [jobs] runnable jobs onto their own OCaml
    domains.  Completed campaigns feed the {!Corpus} store, crashes
    feed {!Triage} (auto-minimized through {!Iris_inspect.Bisect}),
    per-job telemetry hubs merge commutatively into the server hub,
    and every round can stream a JSONL status snapshot.

    Determinism contract.  A case outcome is a pure function of
    (S_R, seed); cases run in index order within their job; jobs own
    disjoint universes.  So per-job results, corpus admissions and
    triage representatives are functions of the submitted spec set
    alone, and the {!report} — keyed and sorted by content-derived
    spec keys — is byte-identical across [jobs] counts and submission
    orders.  The only scheduling-dependent surfaces are the status
    stream and jobs interrupted from outside (cancellation).

    Worker panics are contained per case: the case records a
    hypervisor-crash outcome, the job's universe is rebuilt and the
    job backs off exponentially; a job exceeding the respawn budget
    fails without taking the server down. *)

type status =
  | Queued
  | Running
  | Completed
  | No_seed     (** the recorded trace has no seed with the reason *)
  | Cancelled
  | Timed_out
  | Failed of string

val status_string : status -> string

type job_info = {
  ji_id : int;
  ji_key : string;
  ji_label : string;
  ji_tenant : string;
  ji_status : status;
  ji_done : int;       (** cases executed *)
  ji_total : int;      (** case count; -1 before planning *)
  ji_respawns : int;
  ji_cycles : int64;   (** modeled cycles consumed by its cases *)
}

type recordings
(** Cache of recordings keyed by (workload, exits, prng seed, boot
    scale) — shareable across servers so repeated drains of the same
    scenario set record once. *)

val recordings : unit -> recordings

type t

val create :
  ?jobs:int -> ?quantum:int -> ?max_respawns:int ->
  ?recordings:recordings -> ?status_sink:(string -> unit) ->
  unit -> t
(** [jobs] is the domain-pool width per round (default 1), [quantum]
    the DRR base budget in cases (default 256), [max_respawns] the
    per-job panic budget (default 5).  [status_sink] receives one
    JSONL snapshot per round. *)

val submit : t -> Jobspec.t -> int
(** Enqueue; returns the job id (submission order). *)

val cancel : t -> int -> bool
(** Cancel a queued job immediately, or flag a running one to stop at
    its next quantum boundary; [false] when already finished. *)

val step : t -> bool
(** Run one scheduling round; [false] when the queue is idle. *)

type drain_summary = {
  d_rounds : int;
  d_completed : int;
  d_failed : int;
  d_crashes : int;          (** crashing cases across completed jobs *)
  d_buckets : int;
  d_corpus : int;
  d_report_digest : string;
}

val drain : t -> drain_summary
(** Step until idle. *)

val job_infos : t -> job_info list
(** Submission order. *)

val corpus : t -> Corpus.t
val triage : t -> Triage.t
val hub : t -> Iris_telemetry.Hub.t
(** Merged server hub: per-job campaign telemetry plus [service.*]
    counters. *)

val report : t -> Iris_telemetry.Json.t
(** The merged report: finished jobs grouped by spec key (sorted),
    the corpus digest and the triage buckets.  Independent of
    scheduling interleaving for drained queues — the bench gates its
    rendered bytes. *)

val report_digest : t -> string

val distill : t -> int * int
(** {!Corpus.distill} on the server's store. *)

type verify_summary = {
  v_corpus_checked : int;
  v_corpus_mismatches : int;
  v_buckets_checked : int;
  v_bucket_mismatches : int;
  v_buckets_unreproduced : int;  (** buckets without a minimized repro *)
}

val verify : t -> verify_summary
(** Re-replay the determinism contract: every corpus entry re-executes
    from a freshly booted universe and must reproduce its admission
    digest byte-identically; every triage bucket's representative is
    re-minimized and must land on the stored reproducer digest. *)

val verify_ok : verify_summary -> bool

val status_json : t -> Iris_telemetry.Json.t
val emit_status : t -> unit
(** Push one {!Iris_telemetry.Export.status_line} to the sink. *)
