(** Multi-tenant deficit-round-robin job queue.

    Each tenant is a DRR flow (Shreedhar & Varghese, SIGCOMM '95):
    per scheduling round an eligible flow's deficit grows by
    [quantum x weight], and the flow may run its head job for up to
    that many test cases before yielding.  Consumed cases are charged
    back against the deficit, so over time each tenant's share of the
    domain pool is proportional to its weight regardless of job
    sizes.

    The queue is purely bookkeeping — deterministic given the
    submission sequence and the [next]/[complete] call pattern.  Flows
    are visited in tenant-name order from a rotating cursor; a job
    put back unfinished returns to the head of its flow (run-to-
    completion FIFO within a tenant). *)

type t

val create : ?quantum:int -> unit -> t
(** [quantum] is the base case budget per round (default 256). *)

val quantum : t -> int

val submit : t -> id:int -> tenant:string -> weight:int -> unit
(** Enqueue job [id] on [tenant]'s flow.  [weight] (>= 1) scales the
    flow's per-round deficit increment while this job is queued. *)

val cancel : t -> int -> bool
(** Remove a *queued* job; [false] if unknown or in flight (in-flight
    cancellation is the server's concern). *)

val defer : t -> int -> rounds:int -> unit
(** Backoff: make the job ineligible for the next [rounds] scheduling
    rounds (worker-panic containment). *)

val next : t -> max:int -> (int * int) list
(** Start a scheduling round: pick up to [max] eligible jobs, each
    paired with its case budget, and mark them in flight.  May return
    fewer (or none) when flows are empty or deferred. *)

val complete : t -> id:int -> consumed:int -> finished:bool -> unit
(** Report a picked job back: [consumed] cases are charged against
    its tenant's deficit; unless [finished], the job returns to the
    head of its flow. *)

val round : t -> int
(** Rounds started so far. *)

val pending : t -> int list
(** Queued (not in-flight) job ids, flow order. *)

val in_flight : t -> int list

val is_idle : t -> bool
(** No queued and no in-flight jobs. *)
