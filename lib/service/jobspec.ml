module J = Iris_telemetry.Json
module R = Iris_vtx.Exit_reason
module W = Iris_guest.Workload
module Mutation = Iris_fuzzer.Mutation
module Fnv = Iris_util.Fnv64

type t = {
  tenant : string;
  priority : int;
  workload : W.t;
  exits : int;
  reason : R.t;
  area : Mutation.area;
  mutations : int;
  prng_seed : int;
  boot_scale : float;
  timeout_cycles : int64 option;
}

let make ?(tenant = "default") ?(priority = 1) ?(boot_scale = 0.05)
    ?timeout_cycles ~workload ~exits ~reason ~area ~mutations ~prng_seed () =
  { tenant;
    priority = max 1 priority;
    workload;
    exits;
    reason;
    area;
    mutations;
    prng_seed;
    boot_scale;
    timeout_cycles }

let area_string = function
  | Mutation.Area_vmcs -> "vmcs"
  | Mutation.Area_gpr -> "gpr"

let area_of_string s =
  match String.lowercase_ascii s with
  | "vmcs" -> Some Mutation.Area_vmcs
  | "gpr" -> Some Mutation.Area_gpr
  | _ -> None

let reason_of_string s =
  match int_of_string_opt s with
  | Some code -> R.of_code code
  | None ->
      let want = String.lowercase_ascii s in
      List.find_opt
        (fun r ->
          String.lowercase_ascii (R.name r) = want
          || String.lowercase_ascii (R.short_name r) = want)
        R.all

(* The key folds every field that determines the computation, in a
   fixed order; boot_scale goes through a fixed-precision rendering so
   the fold never depends on float formatting quirks. *)
let key t =
  let h = Fnv.init in
  let h = Fnv.string h t.tenant in
  let h = Fnv.int h t.priority in
  let h = Fnv.string h (W.name t.workload) in
  let h = Fnv.int h t.exits in
  let h = Fnv.int h (R.code t.reason) in
  let h = Fnv.string h (area_string t.area) in
  let h = Fnv.int h t.mutations in
  let h = Fnv.int h t.prng_seed in
  let h = Fnv.string h (Printf.sprintf "%.6f" t.boot_scale) in
  let h =
    match t.timeout_cycles with
    | None -> Fnv.int h (-1)
    | Some c -> Fnv.int64 h c
  in
  Fnv.to_hex h

let label t =
  Printf.sprintf "%s/%s/%s/%s m=%d s=%d" t.tenant (W.name t.workload)
    (R.short_name t.reason)
    (String.uppercase_ascii (area_string t.area))
    t.mutations t.prng_seed

let to_json t =
  let base =
    [ ("tenant", J.String t.tenant);
      ("priority", J.Int t.priority);
      ("workload", J.String (W.name t.workload));
      ("exits", J.Int t.exits);
      ("reason", J.Int (R.code t.reason));
      ("area", J.String (area_string t.area));
      ("mutations", J.Int t.mutations);
      ("prng_seed", J.Int t.prng_seed);
      ("boot_scale", J.Float t.boot_scale) ]
  in
  let timeout =
    match t.timeout_cycles with
    | None -> []
    | Some c -> [ ("timeout_cycles", J.Int (Int64.to_int c)) ]
  in
  J.Obj (base @ timeout)

let num_value = function
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | _ -> None

let of_json j =
  let str k = Option.bind (J.member k j) J.string_value in
  let int k = Option.bind (J.member k j) J.int_value in
  let num k = Option.bind (J.member k j) num_value in
  let ( let* ) = Result.bind in
  let require what = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "jobspec: missing or bad %S" what)
  in
  let* workload =
    match str "workload" with
    | Some s -> require "workload" (W.of_name s)
    | None -> Error "jobspec: missing or bad \"workload\""
  in
  let* exits = require "exits" (int "exits") in
  let* reason =
    match J.member "reason" j with
    | Some (J.Int code) -> require "reason" (R.of_code code)
    | Some (J.String s) -> require "reason" (reason_of_string s)
    | Some _ | None -> Error "jobspec: missing or bad \"reason\""
  in
  let* area =
    match str "area" with
    | Some s -> require "area" (area_of_string s)
    | None -> Error "jobspec: missing or bad \"area\""
  in
  let* mutations = require "mutations" (int "mutations") in
  let* prng_seed = require "prng_seed" (int "prng_seed") in
  let tenant = Option.value (str "tenant") ~default:"default" in
  let priority = Option.value (int "priority") ~default:1 in
  let boot_scale = Option.value (num "boot_scale") ~default:0.05 in
  let timeout_cycles = Option.map Int64.of_int (int "timeout_cycles") in
  Ok
    (make ~tenant ~priority ~boot_scale ?timeout_cycles ~workload ~exits
       ~reason ~area ~mutations ~prng_seed ())
