(** Crash triage: bucket findings by exit-path hash, keep one
    digest-verified reproducer per bucket.

    A crash's signature is an FNV-64 over its failure class, the
    basic exit reason of the mutated seed, the coverage span the
    crashing submission executed (the "stack" of handler lines it
    walked), and the crash detail with numbers normalised away — so
    "bad RIP 0x1234" and "bad RIP 0x9abc" share a bucket while
    different exit paths do not.

    Every bucket keeps a deterministic representative — the crash
    with the smallest (spec key, case index) among all counted — and
    a minimized reproducer produced by {!Iris_inspect.Bisect} for
    that representative: the bisector's verification digest is the
    bucket's proof that the repro replays byte-identically.  The
    representative rule makes the drained bucket set independent of
    the order jobs finished in. *)

type crash = {
  c_spec_key : string;   (** owning job's {!Jobspec.key} *)
  c_case : int;          (** campaign case index *)
  c_reason : Iris_vtx.Exit_reason.t;
  c_failure : Iris_fuzzer.Campaign.failure_class;
  c_detail : string;
  c_span : int array;    (** sorted packed points of the crash span *)
  c_devices : (string * int) list;
      (** device provenance of the replay prefix: (device, touches) *)
}

type repro = {
  r_digest : string;        (** verification-trace digest *)
  r_seeds : int;            (** reproducer length *)
  r_deterministic : bool;   (** both verification replays matched *)
  r_attempts : int;
}

type bucket = {
  b_signature : string;
  mutable b_count : int;
  mutable b_rep : crash;
  mutable b_repro : repro option;
      (** [None] when the bisector could not reproduce the crash *)
}

val normalize_detail : string -> string
(** Collapse decimal and 0x-hex runs to ["#"] / ["0x#"]. *)

val signature :
  failure:Iris_fuzzer.Campaign.failure_class ->
  reason:Iris_vtx.Exit_reason.t ->
  span:int array -> detail:string -> string

type t

val create : unit -> t

val note :
  t -> crash -> minimize:(unit -> repro option) ->
  [ `New | `Counted | `Replaced ]
(** Count a crash into its bucket.  [minimize] runs only when the
    crash creates the bucket or replaces its representative. *)

val count : t -> int
(** Buckets. *)

val total : t -> int
(** Crashes counted. *)

val buckets : t -> bucket list
(** Sorted by signature. *)

val to_json : t -> Iris_telemetry.Json.t
