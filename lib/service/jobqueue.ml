type flow = {
  f_tenant : string;
  mutable f_deficit : int;
  mutable f_queue : int list;  (* head = next to run *)
}

type t = {
  q : int;
  mutable flows : flow list;  (* sorted by tenant name *)
  mutable cursor : int;       (* rotation start into [flows] *)
  mutable rounds : int;
  weights : (int, int) Hashtbl.t;        (* job id -> weight *)
  tenants : (int, string) Hashtbl.t;     (* job id -> tenant *)
  deferred : (int, int) Hashtbl.t;       (* job id -> eligible round *)
  inflight : (int, unit) Hashtbl.t;
}

let create ?(quantum = 256) () =
  { q = max 1 quantum;
    flows = [];
    cursor = 0;
    rounds = 0;
    weights = Hashtbl.create 16;
    tenants = Hashtbl.create 16;
    deferred = Hashtbl.create 16;
    inflight = Hashtbl.create 16 }

let quantum t = t.q

let find_flow t tenant = List.find_opt (fun f -> f.f_tenant = tenant) t.flows

let flow_of t tenant =
  match find_flow t tenant with
  | Some f -> f
  | None ->
      let f = { f_tenant = tenant; f_deficit = 0; f_queue = [] } in
      t.flows <-
        List.sort (fun a b -> compare a.f_tenant b.f_tenant) (f :: t.flows);
      f

let submit t ~id ~tenant ~weight =
  let f = flow_of t tenant in
  f.f_queue <- f.f_queue @ [ id ];
  Hashtbl.replace t.weights id (max 1 weight);
  Hashtbl.replace t.tenants id tenant

let forget t id =
  Hashtbl.remove t.weights id;
  Hashtbl.remove t.tenants id;
  Hashtbl.remove t.deferred id

let cancel t id =
  match Hashtbl.find_opt t.tenants id with
  | None -> false
  | Some _ when Hashtbl.mem t.inflight id -> false
  | Some tenant -> (
      match find_flow t tenant with
      | None -> false
      | Some f ->
          let before = List.length f.f_queue in
          f.f_queue <- List.filter (fun j -> j <> id) f.f_queue;
          let removed = List.length f.f_queue < before in
          if removed then forget t id;
          removed)

let defer t id ~rounds = Hashtbl.replace t.deferred id (t.rounds + max 1 rounds)

let eligible t id =
  match Hashtbl.find_opt t.deferred id with
  | Some until -> until <= t.rounds
  | None -> true

(* An idle flow forfeits its deficit (classic DRR: credit must not
   accumulate while there is nothing to send). *)
let deficit_cap t w = 4 * t.q * w

let next t ~max:max_picks =
  t.rounds <- t.rounds + 1;
  let flows = Array.of_list t.flows in
  let n = Array.length flows in
  let picks = ref [] in
  let picked = ref 0 in
  if n > 0 then begin
    let start = t.cursor mod n in
    (try
       for k = 0 to n - 1 do
         if !picked >= max_picks then raise Exit;
         let f = flows.((start + k) mod n) in
         match List.find_opt (eligible t) f.f_queue with
         | None -> if f.f_queue = [] then f.f_deficit <- 0
         | Some id ->
             let w =
               match Hashtbl.find_opt t.weights id with
               | Some w -> w
               | None -> 1
             in
             f.f_deficit <- min (f.f_deficit + (t.q * w)) (deficit_cap t w);
             f.f_queue <- List.filter (fun j -> j <> id) f.f_queue;
             Hashtbl.replace t.inflight id ();
             picks := (id, max 1 f.f_deficit) :: !picks;
             incr picked
       done
     with Exit -> ());
    t.cursor <- (start + 1) mod n
  end;
  List.rev !picks

let complete t ~id ~consumed ~finished =
  Hashtbl.remove t.inflight id;
  (match Hashtbl.find_opt t.tenants id with
  | None -> ()
  | Some tenant -> (
      match find_flow t tenant with
      | None -> ()
      | Some f ->
          f.f_deficit <- max 0 (f.f_deficit - consumed);
          if not finished then f.f_queue <- id :: f.f_queue));
  if finished then forget t id

let round t = t.rounds

let pending t = List.concat_map (fun f -> f.f_queue) t.flows

let in_flight t =
  Hashtbl.fold (fun id () acc -> id :: acc) t.inflight [] |> List.sort compare

let is_idle t = pending t = [] && Hashtbl.length t.inflight = 0
