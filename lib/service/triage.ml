module J = Iris_telemetry.Json
module R = Iris_vtx.Exit_reason
module Campaign = Iris_fuzzer.Campaign
module Fnv = Iris_util.Fnv64

type crash = {
  c_spec_key : string;
  c_case : int;
  c_reason : R.t;
  c_failure : Campaign.failure_class;
  c_detail : string;
  c_span : int array;
  c_devices : (string * int) list;
}

type repro = {
  r_digest : string;
  r_seeds : int;
  r_deterministic : bool;
  r_attempts : int;
}

type bucket = {
  b_signature : string;
  mutable b_count : int;
  mutable b_rep : crash;
  mutable b_repro : repro option;
}

let is_digit c = c >= '0' && c <= '9'

let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let normalize_detail s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if
      c = '0'
      && !i + 2 < n
      && s.[!i + 1] = 'x'
      && is_hex s.[!i + 2]
    then begin
      Buffer.add_string buf "0x#";
      i := !i + 2;
      while !i < n && is_hex s.[!i] do
        incr i
      done
    end
    else if is_digit c then begin
      Buffer.add_char buf '#';
      while !i < n && is_digit s.[!i] do
        incr i
      done
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let failure_tag = function
  | Campaign.No_failure -> 0
  | Campaign.Vm_crash -> 1
  | Campaign.Hypervisor_crash -> 2

let signature ~failure ~reason ~span ~detail =
  let h = Fnv.init in
  let h = Fnv.int h (failure_tag failure) in
  let h = Fnv.int h (R.code reason) in
  let h = Array.fold_left Fnv.int h span in
  let h = Fnv.string h (normalize_detail detail) in
  Fnv.to_hex h

type t = {
  table : (string, bucket) Hashtbl.t;
  mutable crashes : int;
}

let create () = { table = Hashtbl.create 16; crashes = 0 }

let rep_order c = (c.c_spec_key, c.c_case)

let note t crash ~minimize =
  t.crashes <- t.crashes + 1;
  let s =
    signature ~failure:crash.c_failure ~reason:crash.c_reason
      ~span:crash.c_span ~detail:crash.c_detail
  in
  match Hashtbl.find_opt t.table s with
  | None ->
      Hashtbl.replace t.table s
        { b_signature = s; b_count = 1; b_rep = crash; b_repro = minimize () };
      `New
  | Some b ->
      b.b_count <- b.b_count + 1;
      if rep_order crash < rep_order b.b_rep then begin
        b.b_rep <- crash;
        b.b_repro <- minimize ();
        `Replaced
      end
      else `Counted

let count t = Hashtbl.length t.table

let total t = t.crashes

let buckets t =
  Hashtbl.fold (fun _ b acc -> b :: acc) t.table []
  |> List.sort (fun a b -> compare a.b_signature b.b_signature)

let bucket_to_json b =
  let repro =
    match b.b_repro with
    | None -> J.Null
    | Some r ->
        J.Obj
          [ ("digest", J.String r.r_digest);
            ("seeds", J.Int r.r_seeds);
            ("deterministic", J.Bool r.r_deterministic);
            ("attempts", J.Int r.r_attempts) ]
  in
  J.Obj
    [ ("signature", J.String b.b_signature);
      ("count", J.Int b.b_count);
      ("failure", J.String (Campaign.failure_name b.b_rep.c_failure));
      ("reason", J.String (R.short_name b.b_rep.c_reason));
      ("detail", J.String (normalize_detail b.b_rep.c_detail));
      ("spec", J.String b.b_rep.c_spec_key);
      ("case", J.Int b.b_rep.c_case);
      ("span_points", J.Int (Array.length b.b_rep.c_span));
      ( "devices",
        J.List
          (List.map
             (fun (d, n) -> J.Obj [ ("device", J.String d); ("touches", J.Int n) ])
             b.b_rep.c_devices) );
      ("repro", repro) ]

let to_json t =
  J.Obj
    [ ("buckets", J.List (List.map bucket_to_json (buckets t)));
      ("crashes", J.Int t.crashes) ]
