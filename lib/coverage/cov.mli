(** gcov-style line-coverage store.

    Handlers call {!hit} with their component and source line (the
    OCaml [__LINE__] of the call site stands in for a C line number).
    The store accumulates global hit counts and can additionally
    capture a *span*: the set of points executed while handling one VM
    exit, which is what the recorder attaches to each VM seed.

    Points hit while the store is disabled, or belonging to
    non-instrumented components (the IRIS patches themselves), are
    dropped — mirroring the paper's "code coverage is cleaned up by
    removing hits due to the execution of our record and replay
    components". *)

type point = private int
(** A packed (component, line) pair. *)

val point : Component.t -> int -> point
val point_component : point -> Component.t
val point_line : point -> int
val pp_point : Format.formatter -> point -> unit

val point_of_int : int -> point option
(** Validate a raw packed value (deserialisation); [None] when the
    component index or line is out of range. *)

module Pset : Set.S with type elt = point

type t

val create : unit -> t
val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val hit : t -> Component.t -> int -> unit
(** Record one execution of the basic block anchored at a source
    line: a short, per-site-deterministic run of consecutive line
    points is marked covered, matching gcov's lines-per-basic-block
    granularity. *)

val hits : t -> point -> int
(** Cumulative hit count of a point. *)

val covered : t -> Pset.t
(** All points hit at least once since creation/reset. *)

val unique_lines : t -> int
(** [Pset.cardinal (covered t)] — the paper's "unique lines of code
    discovered" metric. *)

val lines_of : t -> Component.t -> int list
(** Sorted covered lines of one component. *)

val merge : into:t -> t -> unit
(** Union [t] into [into]: hit counts add. Commutative and
    associative; the in-flight span (if any) is not transferred. *)

val reset : t -> unit

val with_span : t -> (unit -> 'a) -> 'a * Pset.t
(** [with_span t f] runs [f] and returns the set of points hit during
    it (even points already covered before).  Spans do not nest. *)

val span_begin : t -> unit
(** Start capturing a span (callback-style alternative to
    {!with_span}); a span already in progress is discarded. *)

val span_end : t -> Pset.t
(** Finish the span and return the points hit since
    {!span_begin}; empty if no span was open. *)

val by_component : Pset.t -> (Component.t * int) list
(** Point counts per component, descending, zero-count components
    omitted. *)

val block_points : Component.t -> int -> Pset.t
(** The line points {!hit} would mark for a probe site — exposed so
    alternative backends ({!Ipt}) decode to the same granularity. *)
