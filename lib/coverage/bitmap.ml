type t = { map : Bytes.t; mask : int }

let create ?(size = 65536) () =
  assert (size > 0 && size land (size - 1) = 0);
  { map = Bytes.make size '\000'; mask = size - 1 }

let size t = Bytes.length t.map

(* Fibonacci hashing of the packed point. *)
let slot t p = (p * 0x9E3779B1) lsr 11 land t.mask

let record t p =
  let i = slot t (p : Cov.point :> int) in
  let v = Char.code (Bytes.get t.map i) in
  if v < 255 then Bytes.set t.map i (Char.chr (v + 1))

let record_set t pset = Cov.Pset.iter (record t) pset

let set_bytes t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.map;
  !n

let merge_new ~virgin t =
  assert (size virgin = size t);
  let fresh = ref 0 in
  Bytes.iteri
    (fun i c ->
      if c <> '\000' then begin
        if Bytes.get virgin.map i = '\000' then incr fresh;
        let acc = Char.code (Bytes.get virgin.map i) in
        let add = Char.code c in
        Bytes.set virgin.map i (Char.chr (min 255 (acc + add)))
      end)
    t.map;
  !fresh

(* Union for the orchestrator's join path: saturating per-slot sum, so
   merging per-worker maps in any order yields the same bitmap as one
   sequential run would have. *)
let merge ~into t =
  assert (size into = size t);
  Bytes.iteri
    (fun i c ->
      if c <> '\000' then begin
        let acc = Char.code (Bytes.get into.map i) in
        Bytes.set into.map i (Char.chr (min 255 (acc + Char.code c)))
      end)
    t.map

let reset t = Bytes.fill t.map 0 (Bytes.length t.map) '\000'

let copy t = { map = Bytes.copy t.map; mask = t.mask }
