type point = int

let line_space = 1 lsl 20

let point comp line =
  assert (line >= 0 && line < line_space);
  (Component.index comp * line_space) + line

let point_component p =
  match Component.of_index (p / line_space) with
  | Some c -> c
  | None -> assert false

let point_line p = p mod line_space

let point_of_int raw =
  if raw < 0 then None
  else begin
    let comp = raw / line_space in
    if Component.of_index comp = None then None else Some raw
  end

let pp_point fmt p =
  Format.fprintf fmt "%s:%d" (Component.name (point_component p)) (point_line p)

module Pset = Set.Make (Int)

(* AFL-style dense store: one flat int-count array per component,
   indexed by the scaled line.  A probe update is a bounds check plus
   an increment — no hashing, no boxing, no allocation — which is what
   keeps the per-exit coverage cost flat across a campaign.

   Capacity follows the same freeze discipline as the VMCS/VMCB field
   registries: a process-wide high-water mark per component records the
   largest scaled line any store has ever needed, and new stores
   preallocate to it.  Once the first campaign has warmed the marks,
   later collectors never grow on the hot path; growth remains as a
   correctness fallback for lines above the high-water mark. *)

let min_capacity = 1024

(* Plain (non-atomic) ints on purpose: word-sized stores do not tear,
   and a lost racing update only weakens a *hint* — the per-store
   [ensure] below still grows on demand. *)
let capacity_hint = Array.make Component.count min_capacity

let note_capacity ci n = if n > capacity_hint.(ci) then capacity_hint.(ci) <- n

type t = {
  mutable counts : int array array;  (* per component, scaled-line index *)
  mutable unique : int;              (* points with count > 0 *)
  mutable on : bool;
  (* Span capture without a per-hit set: points are deduplicated by a
     generation stamp per slot and accumulated in a scratch stack; the
     [Pset] the recorder wants is built once, at [span_end]. *)
  mutable span_gen : int array array;
  mutable gen : int;
  mutable span_on : bool;
  mutable span_buf : int array;      (* packed points, first span_len live *)
  mutable span_len : int;
}

let create () =
  { counts = Array.init Component.count (fun ci -> Array.make capacity_hint.(ci) 0);
    unique = 0;
    on = true;
    span_gen =
      Array.init Component.count (fun ci -> Array.make capacity_hint.(ci) 0);
    gen = 1;
    span_on = false;
    span_buf = Array.make 256 0;
    span_len = 0 }

let enable t = t.on <- true

let disable t = t.on <- false

let enabled t = t.on

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let ensure t ci needed =
  assert (needed <= line_space);
  let old = t.counts.(ci) in
  if needed > Array.length old then begin
    let cap = min line_space (next_pow2 needed (max min_capacity (2 * Array.length old))) in
    note_capacity ci cap;
    let counts = Array.make cap 0 in
    Array.blit old 0 counts 0 (Array.length old);
    t.counts.(ci) <- counts;
    let gens = Array.make cap 0 in
    Array.blit t.span_gen.(ci) 0 gens 0 (Array.length old);
    t.span_gen.(ci) <- gens
  end

let span_push t p =
  if t.span_len >= Array.length t.span_buf then begin
    let bigger = Array.make (2 * Array.length t.span_buf) 0 in
    Array.blit t.span_buf 0 bigger 0 t.span_len;
    t.span_buf <- bigger
  end;
  t.span_buf.(t.span_len) <- p;
  t.span_len <- t.span_len + 1

let hit_one t p =
  let ci = p / line_space and idx = p mod line_space in
  ensure t ci (idx + 1);
  let counts = t.counts.(ci) in
  let c = counts.(idx) in
  if c = 0 then t.unique <- t.unique + 1;
  counts.(idx) <- c + 1;
  if t.span_on then begin
    let gens = t.span_gen.(ci) in
    if gens.(idx) <> t.gen then begin
      gens.(idx) <- t.gen;
      span_push t p
    end
  end

(* A probe stands for a gcov basic block: executing it covers a short
   run of consecutive source lines, with a per-site deterministic
   length.  This keeps line counts in the same regime as real gcov
   output instead of one line per instrumentation point. *)
let block_len line = 1 + (line * 2654435761) land 5

let hit t comp line =
  if t.on && Component.instrumented comp then begin
    let len = block_len line in
    (* Scale the line number so blocks from adjacent probes cannot
       overlap. *)
    let base = line * 16 in
    let ci = Component.index comp in
    ensure t ci (base + len);
    let counts = t.counts.(ci) in
    let point_base = ci * line_space in
    if t.span_on then begin
      let gens = t.span_gen.(ci) in
      let gen = t.gen in
      for i = base to base + len - 1 do
        let c = Array.unsafe_get counts i in
        if c = 0 then t.unique <- t.unique + 1;
        Array.unsafe_set counts i (c + 1);
        if Array.unsafe_get gens i <> gen then begin
          Array.unsafe_set gens i gen;
          span_push t (point_base + i)
        end
      done
    end
    else
      for i = base to base + len - 1 do
        let c = Array.unsafe_get counts i in
        if c = 0 then t.unique <- t.unique + 1;
        Array.unsafe_set counts i (c + 1)
      done
  end

let hits t p =
  let ci = p / line_space and idx = p mod line_space in
  let counts = t.counts.(ci) in
  if idx < Array.length counts then counts.(idx) else 0

let covered t =
  let acc = ref Pset.empty in
  Array.iteri
    (fun ci counts ->
      let point_base = ci * line_space in
      Array.iteri
        (fun idx c -> if c > 0 then acc := Pset.add (point_base + idx) !acc)
        counts)
    t.counts;
  !acc

let unique_lines t = t.unique

let lines_of t comp =
  let counts = t.counts.(Component.index comp) in
  let acc = ref [] in
  for idx = Array.length counts - 1 downto 0 do
    if counts.(idx) > 0 then acc := idx :: !acc
  done;
  !acc

(* Union for the orchestrator's join path: hit counts add, so merging
   per-worker collectors in any order equals one sequential run. The
   in-flight span (if any) of [t] is not transferred. *)
let merge ~into t =
  Array.iteri
    (fun ci counts ->
      ensure into ci (Array.length counts);
      let dst = into.counts.(ci) in
      Array.iteri
        (fun idx c ->
          if c > 0 then begin
            if dst.(idx) = 0 then into.unique <- into.unique + 1;
            dst.(idx) <- dst.(idx) + c
          end)
        counts)
    t.counts

let reset t =
  Array.iter (fun counts -> Array.fill counts 0 (Array.length counts) 0) t.counts;
  t.unique <- 0;
  t.span_on <- false;
  t.span_len <- 0;
  t.gen <- t.gen + 1

let span_begin t =
  (* A span already in progress is discarded. *)
  t.gen <- t.gen + 1;
  t.span_len <- 0;
  t.span_on <- true

let span_end t =
  let acc = ref Pset.empty in
  for i = 0 to t.span_len - 1 do
    acc := Pset.add t.span_buf.(i) !acc
  done;
  t.span_on <- false;
  t.span_len <- 0;
  t.gen <- t.gen + 1;
  !acc

let with_span t f =
  assert (not t.span_on);
  span_begin t;
  match f () with
  | v ->
      let s = span_end t in
      (v, s)
  | exception e ->
      ignore (span_end t);
      raise e

let block_points comp line =
  let len = block_len line in
  let base = line * 16 in
  let rec add i acc =
    if i >= len then acc else add (i + 1) (Pset.add (point comp (base + i)) acc)
  in
  add 0 Pset.empty

let by_component pset =
  let tbl = Hashtbl.create 16 in
  Pset.iter
    (fun p ->
      let c = point_component p in
      let prev = match Hashtbl.find_opt tbl c with Some n -> n | None -> 0 in
      Hashtbl.replace tbl c (prev + 1))
    pset;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* Keep [hit_one] reachable for white-box tests of the single-point
   path. *)
let _ = hit_one
