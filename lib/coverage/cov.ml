type point = int

let line_space = 1 lsl 20

let point comp line =
  assert (line >= 0 && line < line_space);
  (Component.index comp * line_space) + line

let point_component p =
  match Component.of_index (p / line_space) with
  | Some c -> c
  | None -> assert false

let point_line p = p mod line_space

let point_of_int raw =
  if raw < 0 then None
  else begin
    let comp = raw / line_space in
    if Component.of_index comp = None then None else Some raw
  end

let pp_point fmt p =
  Format.fprintf fmt "%s:%d" (Component.name (point_component p)) (point_line p)

module Pset = Set.Make (Int)

type t = {
  counts : (point, int) Hashtbl.t;
  mutable on : bool;
  mutable span : Pset.t option;
}

let create () = { counts = Hashtbl.create 1024; on = true; span = None }

let enable t = t.on <- true

let disable t = t.on <- false

let enabled t = t.on

let hit_one t p =
  let prev = match Hashtbl.find_opt t.counts p with Some n -> n | None -> 0 in
  Hashtbl.replace t.counts p (prev + 1);
  match t.span with
  | Some s -> t.span <- Some (Pset.add p s)
  | None -> ()

(* A probe stands for a gcov basic block: executing it covers a short
   run of consecutive source lines, with a per-site deterministic
   length.  This keeps line counts in the same regime as real gcov
   output instead of one line per instrumentation point. *)
let block_len line = 1 + (line * 2654435761) land 5

let hit t comp line =
  if t.on && Component.instrumented comp then begin
    let len = block_len line in
    (* Scale the line number so blocks from adjacent probes cannot
       overlap. *)
    let base = line * 16 in
    for i = 0 to len - 1 do
      hit_one t (point comp (base + i))
    done
  end

let hits t p = match Hashtbl.find_opt t.counts p with Some n -> n | None -> 0

let covered t = Hashtbl.fold (fun p _ acc -> Pset.add p acc) t.counts Pset.empty

let unique_lines t = Hashtbl.length t.counts

let lines_of t comp =
  Hashtbl.fold
    (fun p _ acc ->
      if point_component p = comp then point_line p :: acc else acc)
    t.counts []
  |> List.sort compare

(* Union for the orchestrator's join path: hit counts add, so merging
   per-worker collectors in any order equals one sequential run. The
   in-flight span (if any) of [t] is not transferred. *)
let merge ~into t =
  Hashtbl.iter
    (fun p n ->
      let prev =
        match Hashtbl.find_opt into.counts p with Some m -> m | None -> 0
      in
      Hashtbl.replace into.counts p (prev + n))
    t.counts

let reset t =
  Hashtbl.reset t.counts;
  t.span <- None

let span_begin t = t.span <- Some Pset.empty

let span_end t =
  let s = match t.span with Some s -> s | None -> Pset.empty in
  t.span <- None;
  s

let with_span t f =
  assert (t.span = None);
  t.span <- Some Pset.empty;
  let finish () =
    let s = match t.span with Some s -> s | None -> Pset.empty in
    t.span <- None;
    s
  in
  match f () with
  | v ->
      let s = finish () in
      (v, s)
  | exception e ->
      ignore (finish ());
      raise e

let block_points comp line =
  let len = block_len line in
  let base = line * 16 in
  let rec add i acc =
    if i >= len then acc else add (i + 1) (Pset.add (point comp (base + i)) acc)
  in
  add 0 Pset.empty

let by_component pset =
  let tbl = Hashtbl.create 16 in
  Pset.iter
    (fun p ->
      let c = point_component p in
      let prev = match Hashtbl.find_opt tbl c with Some n -> n | None -> 0 in
      Hashtbl.replace tbl c (prev + 1))
    pset;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
