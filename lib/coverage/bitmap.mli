(** AFL-style shared-memory coverage bitmap.

    The paper's instrumented Xen "writes its own basic block coverage
    to a bitmap, which is exported as a shared memory area accessible
    at the guest level".  The fuzzer uses it as a cheap novelty
    signal: a test case is interesting if it sets a byte no previous
    input set. *)

type t

val create : ?size:int -> unit -> t
(** [size] defaults to 65536 and must be a power of two. *)

val size : t -> int

val record : t -> Cov.point -> unit
(** Hash the point into a byte slot and saturating-increment it. *)

val record_set : t -> Cov.Pset.t -> unit

val set_bytes : t -> int
(** Number of non-zero bytes (the classic "map density" numerator). *)

val merge_new : virgin:t -> t -> int
(** [merge_new ~virgin m] folds [m] into the accumulated [virgin] map
    and returns how many *new* byte slots [m] touched — the fuzzer's
    novelty count. *)

val merge : into:t -> t -> unit
(** [merge ~into m] unions [m] into [into] (saturating per-slot sum).
    Commutative and associative up to saturation, so merging
    per-worker maps in any order matches one sequential run — the
    orchestrator's join path relies on this. *)

val reset : t -> unit
val copy : t -> t
