(* An SVM execution surface: enough VMCB + EXITCODE dispatch to run
   the translatable subset of recorded VT-x traces (paper §IX).

   [vmrun] mirrors one [Replayer.submit] on the VT-x side: inject the
   translated seed into the VMCB (plain stores — SVM needs no VMREAD
   shim), dispatch the decoded exit code through handler emulations
   that reproduce the VT-x handlers' guest-visible effects, then run
   the VMRUN consistency checks (the analogue of VT-x entry checks;
   an illegal state is VMEXIT_INVALID, which kills the guest just as
   a failed VM entry does).

   The handler emulations only model the *differential-comparable*
   surface: deterministic guest-visible register effects (CPUID
   results, RIP advancement via NEXT_RIP decode assist, hypercall
   return values, HLT blocking/crash policy, CR3 moves, consistency
   checks) and the handler-attributable coverage components.  Time-,
   device- and VT-x-shadow-dependent effects are deliberately out of
   scope — the differential oracle's normalization layer masks or
   excludes those (see [Iris_differential.Normalize]). *)

module F = Iris_vmcs.Field
module C = Iris_vmcs.Controls
module Q = Iris_vtx.Exit_qual
module Comp = Iris_coverage.Component
open Iris_x86

(* Intentionally planted backend asymmetries: ground truth for
   testing the differential detector itself (the archetype's
   [--plant] mode, mirroring [inspect --perturb]). *)
type asymmetry =
  | Next_rip_skew
      (** decode-assist off-by-one: RIP advances to NEXT_RIP + 1 *)
  | Cpuid_ecx_flip
      (** CPUID results return with ECX bit 0 flipped *)
  | Rflags_cf_flip
      (** every exit flips CF in the saved RFLAGS *)
  | Reject_asid
      (** boots with ASID 0, so every VMRUN is VMEXIT_INVALID *)

let asymmetry_name = function
  | Next_rip_skew -> "next-rip-skew"
  | Cpuid_ecx_flip -> "cpuid-ecx-flip"
  | Rflags_cf_flip -> "rflags-cf-flip"
  | Reject_asid -> "reject-asid"

let asymmetry_of_name = function
  | "next-rip-skew" -> Some Next_rip_skew
  | "cpuid-ecx-flip" -> Some Cpuid_ecx_flip
  | "rflags-cf-flip" -> Some Rflags_cf_flip
  | "reject-asid" -> Some Reject_asid
  | _ -> None

let all_asymmetries =
  [ Next_rip_skew; Cpuid_ecx_flip; Rflags_cf_flip; Reject_asid ]

type t = {
  vmcb : Vmcb.t;
  gprs : Gpr.file;  (* the 14 hypervisor-saved GPRs; RAX is in-VMCB *)
  mem_pages : int64;
  plant : asymmetry option;
  base : Vmcb.checkpoint;  (* boot state, for [reset] *)
  mutable crashed : string option;
  mutable blocked : bool;
  mutable touched : int;  (* component bitmask of the last [vmrun] *)
}

type outcome = Ran | Crashed of string

(* Default guest RAM: 64 MiB, matching [Iris_hv.Domain]'s default. *)
let default_mem_pages = 16_384L

let boot ?plant ?(mem_pages = default_mem_pages) () =
  let vmcb = Vmcb.create () in
  (* Architectural reset state, shaped to pass [Vmcb.vmrun_valid] —
     the SVM analogue of booting the dummy VM to a valid entry
     state. *)
  Vmcb.write vmcb Vmcb.save_cr0 Cr0.reset_value;
  Vmcb.write vmcb Vmcb.save_rflags Rflags.reset_value;
  Vmcb.write vmcb Vmcb.save_efer 0x1000L (* SVME *);
  Vmcb.write vmcb Vmcb.save_rip 0xFFF0L;
  Vmcb.write vmcb Vmcb.guest_asid
    (match plant with Some Reject_asid -> 0L | _ -> 1L);
  Vmcb.write vmcb Vmcb.intercept_misc2 1L (* VMRUN intercepted *);
  let base = Vmcb.checkpoint vmcb in
  { vmcb;
    gprs = Gpr.create ();
    mem_pages;
    plant;
    base;
    crashed = None;
    blocked = false;
    touched = 0 }

let reset t =
  ignore (Vmcb.rewind t.vmcb t.base : int);
  Gpr.iter (fun r _ -> Gpr.set t.gprs r 0L) t.gprs;
  t.crashed <- None;
  t.blocked <- false;
  t.touched <- 0

let crashed t = t.crashed

let blocked t = t.blocked

let read_field t f = Vmcb.read t.vmcb f

let touch t c = t.touched <- t.touched lor (1 lsl Comp.index c)

let touched_components t =
  List.filter_map
    (fun i ->
      if t.touched land (1 lsl i) <> 0 then Comp.of_index i else None)
    (List.init Comp.count Fun.id)

let crash t msg = if t.crashed = None then t.crashed <- Some msg

let get_gpr t = function
  | Gpr.Rax -> Vmcb.read t.vmcb Vmcb.save_rax
  | r -> Gpr.get t.gprs r

let set_gpr t r v =
  match r with
  | Gpr.Rax -> Vmcb.write t.vmcb Vmcb.save_rax v
  | r -> Gpr.set t.gprs r v

(* RIP advancement via the decode assist: SVM reports the address of
   the next instruction (NEXT_RIP), which [Port.translate] computes
   from the recorded RIP + instruction length. *)
let advance t ~has_next_rip =
  if has_next_rip then begin
    let next = Vmcb.read t.vmcb Vmcb.next_rip in
    let next =
      match t.plant with
      | Some Next_rip_skew -> Int64.add next 1L
      | _ -> next
    in
    Vmcb.write t.vmcb Vmcb.save_rip next
  end

(* Exception injection through EVENTINJ, mirroring
   [Common.inject_exception]'s escalation policy (#DF, then triple
   fault = guest gone). *)
let inject_exception t ?(error_code = 0L) exn =
  ignore error_code;
  let pending = Vmcb.read t.vmcb Vmcb.eventinj in
  let current =
    if C.intr_info_is_valid pending then
      match C.intr_info_type pending with
      | Some C.Hardware_exception -> Exn.of_vector (C.intr_info_vector pending)
      | Some _ | None -> None
    else None
  in
  match Exn.escalate ~current exn with
  | `Deliver e ->
      let info =
        C.make_intr_info ~error_code:(Exn.has_error_code e)
          ~typ:C.Hardware_exception ~vector:(Exn.vector e) ()
      in
      Vmcb.write t.vmcb Vmcb.eventinj info
  | `Double ->
      let info =
        C.make_intr_info ~error_code:true ~typ:C.Hardware_exception
          ~vector:(Exn.vector Exn.DF) ()
      in
      Vmcb.write t.vmcb Vmcb.eventinj info
  | `Triple -> crash t "Triple fault: exception during #DF delivery"

(* --- handler emulations (guest-visible effects only) --- *)

let xen_signature_leaf = 0x40000000L

let pack4 s off =
  let b i = Int64.of_int (Char.code s.[off + i]) in
  Int64.logor (b 0)
    (Int64.logor
       (Int64.shift_left (b 1) 8)
       (Int64.logor (Int64.shift_left (b 2) 16) (Int64.shift_left (b 3) 24)))

(* The virtual CPUID policy is backend-independent: both hypervisor
   substrates expose the same guest-visible vCPU (same database, same
   Xen leaves, hardware-virtualization feature hidden, hypervisor
   bit set) — exactly like Xen's cpuid policy layer.  Mirrors
   [H_cpuid.handle]. *)
let do_cpuid t ~has_next_rip =
  touch t Comp.Cpuid_c;
  let leaf = Int64.logand (get_gpr t Gpr.Rax) 0xFFFFFFFFL in
  let subleaf = Int64.logand (get_gpr t Gpr.Rcx) 0xFFFFFFFFL in
  let { Cpuid_db.eax; ebx; ecx; edx } =
    if leaf >= xen_signature_leaf && leaf < 0x40000100L then begin
      if leaf = xen_signature_leaf then
        { Cpuid_db.eax = 0x40000002L;
          ebx = pack4 "XenVMMXenVMM" 0;
          ecx = pack4 "XenVMMXenVMM" 4;
          edx = pack4 "XenVMMXenVMM" 8 }
      else if leaf = 0x40000001L then
        { Cpuid_db.eax = 0x00040010L; ebx = 0L; ecx = 0L; edx = 0L }
      else { Cpuid_db.eax = 0L; ebx = 0L; ecx = 0L; edx = 0L }
    end
    else begin
      let raw = Cpuid_db.query ~leaf ~subleaf in
      if leaf = 0x1L then
        { raw with
          Cpuid_db.ecx =
            Int64.logor
              (Int64.logand raw.Cpuid_db.ecx
                 (Int64.lognot Cpuid_db.feature_ecx_vmx))
              0x80000000L }
      else if leaf = 0xBL then { raw with Cpuid_db.ebx = 1L }
      else raw
    end
  in
  let ecx =
    match t.plant with
    | Some Cpuid_ecx_flip -> Int64.logxor ecx 1L
    | _ -> ecx
  in
  set_gpr t Gpr.Rax eax;
  set_gpr t Gpr.Rbx ebx;
  set_gpr t Gpr.Rcx ecx;
  set_gpr t Gpr.Rdx edx;
  advance t ~has_next_rip

let do_hlt t ~has_next_rip =
  touch t Comp.Hvm_c;
  let rflags = Vmcb.read t.vmcb Vmcb.save_rflags in
  if not (Rflags.test rflags Rflags.IF) then
    crash t "guest halted with interrupts disabled"
  else begin
    t.blocked <- true;
    advance t ~has_next_rip
  end

let do_rdtsc t ~rdtscp ~has_next_rip =
  (* The counter value is backend-virtual-clock dependent — the
     oracle masks RAX/RDX (and RCX for RDTSCP), so any deterministic
     value will do here. *)
  set_gpr t Gpr.Rax 0L;
  set_gpr t Gpr.Rdx 0L;
  if rdtscp then set_gpr t Gpr.Rcx 0L;
  advance t ~has_next_rip

let do_vmcall t ~has_next_rip =
  touch t Comp.Hypercall_c;
  let nr = get_gpr t Gpr.Rax in
  let arg = get_gpr t Gpr.Rbx in
  (if nr = 17L (* xen_version *) then set_gpr t Gpr.Rax 0x00040010L
   else if nr = 18L (* console_io *) then set_gpr t Gpr.Rax 0L
   else if nr = 29L (* sched_op *) then begin
     if arg = 1L then t.blocked <- true;
     set_gpr t Gpr.Rax 0L
   end
   else if nr = 12L (* memory_op *) then set_gpr t Gpr.Rax t.mem_pages
   else if nr = 32L (* event_channel_op *) then set_gpr t Gpr.Rax 0L
   else if nr = 41L (* vmcs_fuzzing *) then set_gpr t Gpr.Rax 0L
   else set_gpr t Gpr.Rax (-38L) (* ENOSYS *));
  advance t ~has_next_rip

let do_xsetbv t ~has_next_rip =
  touch t Comp.Hvm_c;
  let idx = get_gpr t Gpr.Rcx in
  let lo = Int64.logand (get_gpr t Gpr.Rax) 0xFFFFFFFFL in
  let hi = get_gpr t Gpr.Rdx in
  let value = Int64.logor lo (Int64.shift_left hi 32) in
  if idx <> 0L then inject_exception t ~error_code:0L Exn.GP
  else if Int64.logand value 1L = 0L then
    inject_exception t ~error_code:0L Exn.GP
  else if Int64.logand value (Int64.lognot 0x7L) <> 0L then
    inject_exception t ~error_code:0L Exn.GP
  else advance t ~has_next_rip

let do_io t ~has_next_rip =
  touch t Comp.Io_c;
  (* EXITINFO1 carries the translated VT-x I/O qualification verbatim
     (the translation contract; real SVM re-encodes it). *)
  match Q.decode_io (Vmcb.read t.vmcb Vmcb.exitinfo1) with
  | None -> crash t "undecodable I/O qualification"
  | Some q ->
      if q.Q.string_op then
        (* String I/O needs the instruction emulator + guest memory:
           outside the modeled surface (the oracle excludes it). *)
        touch t Comp.Emulate_c
      else begin
        (match q.Q.direction with
        | Q.Io_out -> ()
        | Q.Io_in ->
            (* The device result is masked by the oracle; merge a
               deterministic zero like IN does for sub-64-bit
               widths. *)
            let old = get_gpr t Gpr.Rax in
            let m = Iris_util.Bits.mask (8 * q.Q.size) in
            set_gpr t Gpr.Rax (Int64.logand old (Int64.lognot m)));
        advance t ~has_next_rip
      end

let do_npf t ~has_next_rip =
  touch t Comp.Ept_c;
  let gpa = Vmcb.read t.vmcb Vmcb.exitinfo2 in
  let in_ram = gpa >= 0L && gpa < Int64.mul t.mem_pages 4096L in
  let in_mmio =
    Iris_hv.Vlapic.in_range gpa
    || (gpa >= Iris_hv.Domain.mmio_bar_base
        && gpa < Int64.add Iris_hv.Domain.mmio_bar_base
                   Iris_hv.Domain.mmio_bar_size)
  in
  if in_mmio then
    (* MMIO emulation needs guest memory for instruction decode:
       outside the modeled surface. *)
    touch t Comp.Emulate_c
  else if in_ram then
    (* Populate-on-demand: map and retry, no RIP advance. *)
    ()
  else begin
    inject_exception t ~error_code:0L Exn.GP;
    advance t ~has_next_rip
  end

let do_cr t ~has_next_rip =
  match Q.decode_cr (Vmcb.read t.vmcb Vmcb.exitinfo1) with
  | None -> crash t "unhandled CR access qualification"
  | Some { Q.cr; access; gpr } -> (
      match access with
      | Q.Mov_to_cr -> (
          let value = get_gpr t gpr in
          match cr with
          | 3 ->
              if Int64.shift_right_logical value 48 <> 0L then
                inject_exception t ~error_code:0L Exn.GP
              else begin
                Vmcb.write t.vmcb Vmcb.save_cr3 value;
                let cr0 = Vmcb.read t.vmcb Vmcb.save_cr0 in
                let cr4 = Vmcb.read t.vmcb Vmcb.save_cr4 in
                if
                  Cr0.test cr0 Cr0.PG && Cr4.test cr4 Cr4.PAE
                  && not (Cr4.test cr4 Cr4.PCIDE)
                then touch t Comp.Ept_c (* PDPTE reload *);
                advance t ~has_next_rip
              end
          | 8 ->
              if Int64.logand value (Int64.lognot 0xFL) <> 0L then
                inject_exception t ~error_code:0L Exn.GP
              else
                (* TPR write lands in the (unmodeled) local APIC. *)
                advance t ~has_next_rip
          | 0 | 4 ->
              (* CR0/CR4 writes read the VT-x CR shadows, which have
                 no VMCB slot — those seeds are translation-lossy and
                 never compared; crash conservatively if one gets
                 here. *)
              crash t (Printf.sprintf "unmodeled MOV to CR%d" cr)
          | n -> crash t (Printf.sprintf "MOV to unsupported CR%d" n))
      | Q.Mov_from_cr -> (
          match cr with
          | 3 ->
              set_gpr t gpr (Vmcb.read t.vmcb Vmcb.save_cr3);
              advance t ~has_next_rip
          | 8 ->
              (* TPR value is device state; masked by the oracle. *)
              set_gpr t gpr 0L;
              advance t ~has_next_rip
          | n -> crash t (Printf.sprintf "MOV from unexpected CR%d" n))
      | Q.Clts_op | Q.Lmsw_op ->
          (* Shadow-dependent, like MOV to CR0. *)
          crash t "unmodeled CLTS/LMSW")

let dispatch t code ~has_next_rip =
  let module E = Exitcode in
  match code with
  | E.Vmexit_cpuid -> do_cpuid t ~has_next_rip
  | E.Vmexit_hlt -> do_hlt t ~has_next_rip
  | E.Vmexit_rdtsc -> do_rdtsc t ~rdtscp:false ~has_next_rip
  | E.Vmexit_rdtscp -> do_rdtsc t ~rdtscp:true ~has_next_rip
  | E.Vmexit_vmmcall -> do_vmcall t ~has_next_rip
  | E.Vmexit_pause ->
      touch t Comp.Hvm_c;
      advance t ~has_next_rip
  | E.Vmexit_wbinvd ->
      touch t Comp.Hvm_c;
      touch t Comp.Ept_c;
      advance t ~has_next_rip
  | E.Vmexit_xsetbv -> do_xsetbv t ~has_next_rip
  | E.Vmexit_invlpg ->
      touch t Comp.Ept_c;
      advance t ~has_next_rip
  | E.Vmexit_invd | E.Vmexit_task_switch | E.Vmexit_gdtr_read
  | E.Vmexit_idtr_read | E.Vmexit_ldtr_read | E.Vmexit_tr_read ->
      advance t ~has_next_rip
  | E.Vmexit_ioio -> do_io t ~has_next_rip
  | E.Vmexit_npf -> do_npf t ~has_next_rip
  | E.Vmexit_cr_read _ | E.Vmexit_cr_write _ -> do_cr t ~has_next_rip
  | E.Vmexit_shutdown ->
      touch t Comp.Hvm_c;
      crash t "Triple fault"
  | E.Vmexit_vmrun | E.Vmexit_vmload | E.Vmexit_vmsave | E.Vmexit_stgi
  | E.Vmexit_clgi ->
      (* Nested SVM not exposed: #UD, like the VT-x VMX-instruction
         handler. *)
      inject_exception t Exn.UD
  | E.Vmexit_invalid -> crash t "VM entry failure reported as exit code"
  | E.Vmexit_mwait | E.Vmexit_monitor | E.Vmexit_rdpmc | E.Vmexit_rsm
  | E.Vmexit_iret | E.Vmexit_smi | E.Vmexit_init ->
      (* The VT-x exit path treats these reasons as unexpected and
         kills the domain; mirror the policy. *)
      crash t
        (Printf.sprintf "unexpected exit code %s" (Exitcode.name code))
  | E.Vmexit_intr | E.Vmexit_nmi | E.Vmexit_vintr | E.Vmexit_excp _
  | E.Vmexit_msr ->
      (* Interrupt/exception delivery and MSR direction depend on
         VT-x-only exit information; lossy, never compared. *)
      ()
  | E.Vmexit_invlpga | E.Vmexit_skinit | E.Vmexit_pushf | E.Vmexit_popf
  | E.Vmexit_swint ->
      (* SVM-only exits no VT-x trace can produce. *)
      ()

(* Module-level scan instead of a [List.exists] closure so the
   per-vmrun dispatch allocates nothing. *)
let rec writes_next_rip = function
  | [] -> false
  | w :: rest -> w.Port.field = Vmcb.next_rip || writes_next_rip rest

let vmrun t (tr : Port.translated) =
  t.touched <- 0;
  match t.crashed with
  | Some msg -> Crashed msg
  | None ->
      t.blocked <- false;
      (* Seed injection: plain stores, in seed order. *)
      Port.apply t.vmcb tr;
      List.iter (fun (r, v) -> Gpr.set t.gprs r v) tr.Port.gprs;
      let has_next_rip = writes_next_rip tr.Port.writes in
      (* Re-inject an interrupted event, as the VT-x exit path does
         with the IDT-vectoring info. *)
      let idtv = Vmcb.read t.vmcb Vmcb.exitintinfo in
      if C.intr_info_is_valid idtv then Vmcb.write t.vmcb Vmcb.eventinj idtv;
      (match tr.Port.exitcode with
      | None -> ()
      | Some code -> dispatch t code ~has_next_rip);
      (match t.plant with
      | Some Rflags_cf_flip ->
          Vmcb.write t.vmcb Vmcb.save_rflags
            (Int64.logxor (Vmcb.read t.vmcb Vmcb.save_rflags) 1L)
      | _ -> ());
      (match t.crashed with
      | Some msg -> Crashed msg
      | None -> (
          (* The VMRUN consistency checks are the analogue of VT-x's
             VM-entry checks: illegal state means the guest cannot be
             re-entered. *)
          match Vmcb.vmrun_valid t.vmcb with
          | Ok () -> Ran
          | Error e ->
              let msg = "VMEXIT_INVALID: " ^ e in
              crash t msg;
              Crashed msg))
