(** AMD SVM's Virtual Machine Control Block (paper §IX,
    "Portability").

    The VMCB "holds information for the hypervisor and the guest
    similarly to the VMCS", with two structural differences that
    matter to IRIS:

    - it is a plain 4 KiB memory page: the hypervisor reads and
      writes fields with ordinary loads/stores (no VMREAD/VMWRITE
      instructions, hence no read-only fields and no need for the
      replayer's VMREAD shim — seed injection is all stores);
    - guest RAX lives *inside* the save area (the world switch swaps
      it), so an SVM seed carries 14 hypervisor-saved GPRs instead of
      VT-x's 15.

    Offsets follow the AMD64 Architecture Programmer's Manual vol. 2,
    Appendix B. *)

type t
(** One VMCB (control area + state save area). *)

type field = private int
(** Dense field index. *)

type area = Control | Save

val def : string -> int -> area -> field
(** Register a field. Only usable during module initialisation: the
    table is frozen once built and any later call raises
    [Invalid_argument]. *)

val is_frozen : unit -> bool
(** True once the table is built; [def] raises from then on. *)

val create : unit -> t
val copy : t -> t

val count : int
val all : field array
val name : field -> string
val offset : field -> int
(** Byte offset within the 4 KiB VMCB page. *)

val area : field -> area
val of_offset : int -> field option

val read : t -> field -> int64
val write : t -> field -> int64 -> unit
(** Plain stores: every field is writable, including exit codes. *)

(** {2 Incremental (copy-on-write) checkpoints}

    Same write-journal machinery as [Iris_vmcs.Vmcs]: a checkpoint
    records the prior value of each field the epoch writes, so
    {!rewind} restores only what changed.  Checkpoints nest. *)

type checkpoint

val checkpoint : t -> checkpoint

val rewind : t -> checkpoint -> int
(** Restore the state at [checkpoint] (which stays live); returns the
    number of fields restored.  Raises [Invalid_argument] on a stale
    checkpoint. *)

val commit : t -> checkpoint -> unit
(** Drop the innermost checkpoint, folding its journal into the
    parent. *)

val checkpoint_depth : t -> int

val journaled_fields : t -> int
(** Fields dirtied so far in the innermost open epoch. *)

val nonzero_fields : t -> (field * int64) list
val pp : Format.formatter -> t -> unit

(** {2 Control-area fields} *)

val intercept_cr_reads : field
val intercept_cr_writes : field
val intercept_exceptions : field
val intercept_misc1 : field       (* INTR, NMI, HLT, IOIO, MSR, CPUID, RDTSC... *)
val intercept_misc2 : field       (* VMRUN, VMMCALL, ... *)
val iopm_base_pa : field
val msrpm_base_pa : field
val tsc_offset : field
val guest_asid : field
val tlb_control : field
val vintr : field                 (* virtual interrupt state (V_IRQ, V_TPR) *)
val interrupt_shadow : field
val exitcode : field
val exitinfo1 : field
val exitinfo2 : field
val exitintinfo : field
val np_enable : field             (* nested paging *)
val eventinj : field
val n_cr3 : field

val next_rip : field
(** SVM's decode-assist replacement for VT-x's exit-instruction
    length: the address of the next instruction. *)

(** {2 State-save-area fields} *)

val save_es_selector : field
val save_es_attrib : field
val save_es_base : field
val save_es_limit : field
val save_cs_selector : field
val save_cs_attrib : field
val save_cs_base : field
val save_cs_limit : field
val save_ss_selector : field
val save_ss_attrib : field
val save_ss_base : field
val save_ss_limit : field
val save_ds_selector : field
val save_ds_attrib : field
val save_ds_base : field
val save_ds_limit : field
val save_gdtr_base : field
val save_gdtr_limit : field
val save_idtr_base : field
val save_idtr_limit : field
val save_efer : field
val save_cr0 : field
val save_cr2 : field
val save_cr3 : field
val save_cr4 : field
val save_dr6 : field
val save_dr7 : field
val save_rflags : field
val save_rip : field
val save_rsp : field

val save_rax : field
(** RAX is part of the world switch — the VT-x/SVM asymmetry the seed
    translation must handle. *)

val save_sysenter_cs : field
val save_sysenter_esp : field
val save_sysenter_eip : field
val save_g_pat : field

(** {2 Consistency}

    A VMRUN with illegal state (the analogue of a VT-x VM-entry
    failure) exits immediately with [VMEXIT_INVALID] (-1). *)

val vmrun_valid : t -> (unit, string) result
