type field = int

type area = Control | Save

type info = { f_name : string; f_offset : int; f_area : area }

let registry : info list ref = ref []

let counter = ref 0

(* Same freeze discipline as [Iris_vmcs.Field]: the table is shared
   read-only across orchestrator worker domains and the dense indices
   are a wire format, so registration after startup must raise. *)
let frozen = ref false

let def f_name f_offset f_area =
  if !frozen then
    invalid_arg ("Vmcb.def: registry frozen (late registration of " ^ f_name ^ ")");
  registry := { f_name; f_offset; f_area } :: !registry;
  let idx = !counter in
  incr counter;
  idx

(* --- control area (offsets 0x000..0x3FF) --- *)
let intercept_cr_reads = def "INTERCEPT_CR_READS" 0x000 Control
let intercept_cr_writes = def "INTERCEPT_CR_WRITES" 0x002 Control
let intercept_dr_reads = def "INTERCEPT_DR_READS" 0x004 Control
let intercept_dr_writes = def "INTERCEPT_DR_WRITES" 0x006 Control
let intercept_exceptions = def "INTERCEPT_EXCEPTIONS" 0x008 Control
let intercept_misc1 = def "INTERCEPT_MISC1" 0x00C Control
let intercept_misc2 = def "INTERCEPT_MISC2" 0x010 Control
let pause_filter_threshold = def "PAUSE_FILTER_THRESHOLD" 0x03C Control
let pause_filter_count = def "PAUSE_FILTER_COUNT" 0x03E Control
let iopm_base_pa = def "IOPM_BASE_PA" 0x040 Control
let msrpm_base_pa = def "MSRPM_BASE_PA" 0x048 Control
let tsc_offset = def "TSC_OFFSET" 0x050 Control
let guest_asid = def "GUEST_ASID" 0x058 Control
let tlb_control = def "TLB_CONTROL" 0x05C Control
let vintr = def "VINTR" 0x060 Control
let interrupt_shadow = def "INTERRUPT_SHADOW" 0x068 Control
let exitcode = def "EXITCODE" 0x070 Control
let exitinfo1 = def "EXITINFO1" 0x078 Control
let exitinfo2 = def "EXITINFO2" 0x080 Control
let exitintinfo = def "EXITINTINFO" 0x088 Control
let np_enable = def "NP_ENABLE" 0x090 Control
let eventinj = def "EVENTINJ" 0x0A8 Control
let n_cr3 = def "N_CR3" 0x0B0 Control
let vmcb_clean = def "VMCB_CLEAN" 0x0C0 Control
let next_rip = def "NEXT_RIP" 0x0C8 Control

(* --- state save area (offsets 0x400..) --- *)
let save_es_selector = def "ES_SELECTOR" 0x400 Save
let save_es_attrib = def "ES_ATTRIB" 0x402 Save
let save_es_limit = def "ES_LIMIT" 0x404 Save
let save_es_base = def "ES_BASE" 0x408 Save
let save_cs_selector = def "CS_SELECTOR" 0x410 Save
let save_cs_attrib = def "CS_ATTRIB" 0x412 Save
let save_cs_limit = def "CS_LIMIT" 0x414 Save
let save_cs_base = def "CS_BASE" 0x418 Save
let save_ss_selector = def "SS_SELECTOR" 0x420 Save
let save_ss_attrib = def "SS_ATTRIB" 0x422 Save
let save_ss_limit = def "SS_LIMIT" 0x424 Save
let save_ss_base = def "SS_BASE" 0x428 Save
let save_ds_selector = def "DS_SELECTOR" 0x430 Save
let save_ds_attrib = def "DS_ATTRIB" 0x432 Save
let save_ds_limit = def "DS_LIMIT" 0x434 Save
let save_ds_base = def "DS_BASE" 0x438 Save
let save_gdtr_limit = def "GDTR_LIMIT" 0x464 Save
let save_gdtr_base = def "GDTR_BASE" 0x468 Save
let save_idtr_limit = def "IDTR_LIMIT" 0x474 Save
let save_idtr_base = def "IDTR_BASE" 0x478 Save
let save_efer = def "EFER" 0x4D0 Save
let save_cr4 = def "CR4" 0x548 Save
let save_cr3 = def "CR3" 0x550 Save
let save_cr0 = def "CR0" 0x558 Save
let save_dr7 = def "DR7" 0x560 Save
let save_dr6 = def "DR6" 0x568 Save
let save_rflags = def "RFLAGS" 0x570 Save
let save_rip = def "RIP" 0x578 Save
let save_rsp = def "RSP" 0x5D8 Save
let save_rax = def "RAX" 0x5F8 Save
let save_star = def "STAR" 0x600 Save
let save_lstar = def "LSTAR" 0x608 Save
let save_cstar = def "CSTAR" 0x610 Save
let save_sfmask = def "SFMASK" 0x618 Save
let save_kernel_gs_base = def "KERNEL_GS_BASE" 0x620 Save
let save_sysenter_cs = def "SYSENTER_CS" 0x628 Save
let save_sysenter_esp = def "SYSENTER_ESP" 0x630 Save
let save_sysenter_eip = def "SYSENTER_EIP" 0x638 Save
let save_cr2 = def "CR2" 0x640 Save
let save_g_pat = def "G_PAT" 0x668 Save
let save_dbgctl = def "DBGCTL" 0x670 Save

let table = Array.of_list (List.rev !registry)

let () = frozen := true

let is_frozen () = !frozen

let count = Array.length table

let all = Array.init count (fun i -> i)

let name f = table.(f).f_name

let offset f = table.(f).f_offset

let area f = table.(f).f_area

let by_offset : (int, field) Hashtbl.t =
  let h = Hashtbl.create 128 in
  Array.iteri (fun i inf -> Hashtbl.replace h inf.f_offset i) table;
  h

let of_offset o = Hashtbl.find_opt by_offset o

(* One copy-on-write epoch: the value each field held before the
   epoch's first write.  Same dense-journal machinery as
   [Iris_vmcs.Vmcs]: the per-write probe is a single byte load (no
   mem-then-add double lookup), rewind/commit walk only the dirty
   stack, and epochs are pooled so steady-state checkpointing
   allocates nothing. *)
type journal = {
  j_old : int64 array;
  j_seen : Bytes.t;
  j_dirty : int array;
  mutable j_n : int;
}

type t = {
  values : int64 array;
  mutable journals : journal list;  (* innermost epoch first *)
  mutable pool : journal list;      (* recycled epochs *)
}

let fresh_journal () =
  { j_old = Array.make count 0L;
    j_seen = Bytes.make count '\000';
    j_dirty = Array.make count 0;
    j_n = 0 }

let clear_journal j =
  for k = 0 to j.j_n - 1 do
    Bytes.unsafe_set j.j_seen j.j_dirty.(k) '\000'
  done;
  j.j_n <- 0

let create () = { values = Array.make count 0L; journals = []; pool = [] }

let copy t = { values = Array.copy t.values; journals = []; pool = [] }

let read t f = t.values.(f)

let write t f v =
  (match t.journals with
  | [] -> ()
  | j :: _ ->
      if Bytes.unsafe_get j.j_seen f = '\000' then begin
        Bytes.unsafe_set j.j_seen f '\001';
        j.j_old.(f) <- t.values.(f);
        j.j_dirty.(j.j_n) <- f;
        j.j_n <- j.j_n + 1
      end);
  t.values.(f) <- v

type checkpoint = int

let recycle t j =
  clear_journal j;
  t.pool <- j :: t.pool

let checkpoint t =
  let j =
    match t.pool with
    | j :: rest ->
        t.pool <- rest;
        j
    | [] -> fresh_journal ()
  in
  t.journals <- j :: t.journals;
  List.length t.journals

let checkpoint_depth t = List.length t.journals

let journaled_fields t =
  match t.journals with [] -> 0 | j :: _ -> j.j_n

let apply_journal t j =
  for k = 0 to j.j_n - 1 do
    let f = j.j_dirty.(k) in
    t.values.(f) <- j.j_old.(f)
  done;
  j.j_n

let rewind t cp =
  if cp <= 0 || cp > List.length t.journals then
    invalid_arg "Vmcb.rewind: stale checkpoint";
  let restored = ref 0 in
  let rec undo = function
    | [] -> assert false
    | j :: rest as js ->
        restored := !restored + apply_journal t j;
        if List.length js = cp then begin
          clear_journal j;
          t.journals <- js
        end
        else begin
          recycle t j;
          undo rest
        end
  in
  undo t.journals;
  !restored

let commit t cp =
  if cp = 0 || cp <> List.length t.journals then
    invalid_arg "Vmcb.commit: not the innermost checkpoint";
  match t.journals with
  | [] -> assert false
  | j :: rest ->
      (match rest with
      | [] -> ()
      | parent :: _ ->
          for k = 0 to j.j_n - 1 do
            let f = j.j_dirty.(k) in
            if Bytes.unsafe_get parent.j_seen f = '\000' then begin
              Bytes.unsafe_set parent.j_seen f '\001';
              parent.j_old.(f) <- j.j_old.(f);
              parent.j_dirty.(parent.j_n) <- f;
              parent.j_n <- parent.j_n + 1
            end
          done);
      recycle t j;
      t.journals <- rest

let nonzero_fields t =
  Array.to_list all
  |> List.filter_map (fun f ->
         let v = read t f in
         if v <> 0L then Some (f, v) else None)

let pp fmt t =
  Format.fprintf fmt "@[<v>VMCB@ ";
  List.iter
    (fun (f, v) -> Format.fprintf fmt "%s = 0x%Lx@ " (name f) v)
    (nonzero_fields t);
  Format.fprintf fmt "@]"

(* VMRUN consistency checks (APM 15.5.1, "Canonicalization and
   Consistency Checks"): illegal state makes VMRUN exit with
   VMEXIT_INVALID instead of running the guest. *)
let vmrun_valid t =
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let* () =
    let cr0 = read t save_cr0 in
    if Iris_x86.Cr0.valid cr0 then Ok ()
    else Error "CR0 fixed-bit violation"
  in
  let* () =
    let efer = read t save_efer in
    if Iris_x86.Msr.efer_valid (Int64.logand efer (Int64.lognot 0x1000L))
    then Ok ()
    else Error "EFER reserved bits"
  in
  let* () =
    (* EFER.LMA requires CR0.PG and CR4.PAE. *)
    let efer = read t save_efer in
    let cr0 = read t save_cr0 in
    let cr4 = read t save_cr4 in
    if
      Int64.logand efer Iris_x86.Msr.efer_lma <> 0L
      && not
           (Iris_x86.Cr0.test cr0 Iris_x86.Cr0.PG
           && Iris_x86.Cr4.test cr4 Iris_x86.Cr4.PAE)
    then Error "EFER.LMA without PG/PAE"
    else Ok ()
  in
  let* () =
    if Iris_x86.Rflags.entry_valid (read t save_rflags) then Ok ()
    else Error "RFLAGS reserved-bit violation"
  in
  let* () =
    if read t guest_asid <> 0L then Ok ()
    else Error "ASID 0 is reserved for the host"
  in
  (* The intercept vectors must keep VMRUN intercepted (bit 0 of
     MISC2), or the guest could VMRUN itself. *)
  if Int64.logand (read t intercept_misc2) 1L <> 0L then Ok ()
  else Error "VMRUN intercept clear"

(* Keep table-only fields alive. *)
let _ = intercept_dr_reads
let _ = intercept_dr_writes
let _ = pause_filter_threshold
let _ = pause_filter_count
let _ = vmcb_clean
let _ = save_star
let _ = save_lstar
let _ = save_cstar
let _ = save_sfmask
let _ = save_kernel_gs_base
let _ = save_dbgctl
