(** An SVM execution surface for differential replay (paper §IX).

    [Machine] replays the translatable subset of recorded VT-x traces
    on the VMCB substrate: [vmrun] injects a [Port.translated] seed
    (plain stores — SVM's exit information is writable, so no VMREAD
    shim is needed), dispatches the decoded EXITCODE through handler
    emulations mirroring the VT-x handlers' guest-visible effects, and
    finishes with the VMRUN consistency checks (the analogue of VT-x
    VM-entry checks; an illegal state is VMEXIT_INVALID).

    The modeled surface is exactly what the differential oracle
    compares ({!Iris_differential}): deterministic register effects,
    RIP advancement through the NEXT_RIP decode assist, crash/block
    policy, and handler-attributable coverage components.  Exits whose
    semantics depend on VT-x-only state (MSR direction, interruption
    info, CR shadows) are left inert — the oracle classifies those
    seeds as translation-lossy and never compares them. *)

(** Intentionally planted backend asymmetries — ground truth for
    testing the differential detector itself (the [--plant] mode). *)
type asymmetry =
  | Next_rip_skew   (** decode assist off-by-one: RIP lands at NEXT_RIP+1 *)
  | Cpuid_ecx_flip  (** CPUID results come back with ECX bit 0 flipped *)
  | Rflags_cf_flip  (** every exit flips CF in the saved RFLAGS *)
  | Reject_asid     (** boots with ASID 0: every VMRUN is VMEXIT_INVALID *)

val asymmetry_name : asymmetry -> string
val asymmetry_of_name : string -> asymmetry option
val all_asymmetries : asymmetry list

type t

type outcome = Ran | Crashed of string

val boot : ?plant:asymmetry -> ?mem_pages:int64 -> unit -> t
(** A machine in architectural reset state, shaped to pass
    [Vmcb.vmrun_valid] — the SVM analogue of booting the dummy VM.
    [mem_pages] sizes the modeled guest RAM (default 64 MiB worth,
    matching [Iris_hv.Domain]); it feeds the memory_op hypercall and
    the NPF RAM/non-RAM split. *)

val reset : t -> unit
(** Rewind to the boot state: the revert step between cases. *)

val vmrun : t -> Port.translated -> outcome
(** Inject the translated seed, dispatch its exit code, run the VMRUN
    consistency checks.  A crashed machine stays crashed until
    [reset]. *)

val crashed : t -> string option
val blocked : t -> bool
(** Guest gone / guest waiting — mirror [Domain.crashed]/[blocked]. *)

val read_field : t -> Vmcb.field -> int64
val get_gpr : t -> Iris_x86.Gpr.reg -> int64
(** Post-case architectural state ([Rax] routes to the VMCB save
    area). *)

val touched_components : t -> Iris_coverage.Component.t list
(** Components hit by the last [vmrun], for coverage comparison. *)
